package estimator

import (
	"math"
	"strings"
	"testing"

	"quicksel/internal/geom"
)

func box(lo0, lo1, hi0, hi1 float64) geom.Box {
	return geom.Box{Lo: []float64{lo0, lo1}, Hi: []float64{hi0, hi1}}
}

// trainingStream is a deterministic 2-d feedback stream roughly consistent
// with mass concentrated in the lower-left quadrant.
var trainingStream = []struct {
	box geom.Box
	sel float64
}{
	{box(0, 0, 0.5, 0.5), 0.55},
	{box(0.5, 0.5, 1, 1), 0.05},
	{box(0, 0, 0.25, 1), 0.35},
	{box(0.25, 0, 1, 0.25), 0.30},
	{box(0.1, 0.1, 0.6, 0.6), 0.50},
	{box(0.7, 0, 1, 1), 0.10},
}

var probes = [][]geom.Box{
	{box(0, 0, 0.5, 0.5)},
	{box(0.5, 0, 1, 0.5)},
	{box(0.2, 0.2, 0.8, 0.8)},
	{box(0, 0, 0.3, 0.3), box(0.6, 0.6, 1, 1)}, // disjoint union
	{geom.Unit(2)},
}

func newTrained(t *testing.T, method string) Backend {
	t.Helper()
	b, err := New(Config{Method: method, Dim: 2, Seed: 7})
	if err != nil {
		t.Fatalf("New(%s): %v", method, err)
	}
	for i, o := range trainingStream {
		if err := b.Observe(o.box, o.sel); err != nil {
			t.Fatalf("%s: Observe %d: %v", method, i, err)
		}
	}
	if err := b.Train(); err != nil {
		t.Fatalf("%s: Train: %v", method, err)
	}
	return b
}

func TestAllMethodsObserveTrainEstimate(t *testing.T) {
	for _, method := range Methods() {
		t.Run(method, func(t *testing.T) {
			b := newTrained(t, method)
			if got := b.Method(); got != method {
				t.Errorf("Method() = %q, want %q", got, method)
			}
			if got := b.Dim(); got != 2 {
				t.Errorf("Dim() = %d, want 2", got)
			}
			st := b.Stats()
			if st.Method != method {
				t.Errorf("Stats().Method = %q, want %q", st.Method, method)
			}
			if st.Observed != len(trainingStream) {
				t.Errorf("Stats().Observed = %d, want %d", st.Observed, len(trainingStream))
			}
			if st.Params <= 0 {
				t.Errorf("Stats().Params = %d, want > 0", st.Params)
			}
			for i, boxes := range probes {
				sel, err := b.Estimate(boxes)
				if err != nil {
					t.Fatalf("Estimate probe %d: %v", i, err)
				}
				if math.IsNaN(sel) || sel < 0 || sel > 1 {
					t.Errorf("probe %d: estimate %g outside [0, 1]", i, sel)
				}
			}
		})
	}
}

// TestSnapshotRoundTripBitIdentical is the property the serving daemon's
// restart path depends on: restore(snapshot(b)) estimates bit-identically to
// b for every method, and keeps learning identically afterwards (the
// background trainer clones via this path before every retrain).
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	for _, method := range Methods() {
		t.Run(method, func(t *testing.T) {
			b := newTrained(t, method)
			state, err := b.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			r, err := Restore(method, state)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got, want := r.Stats(), b.Stats(); got != want {
				t.Errorf("restored Stats = %+v, want %+v", got, want)
			}
			compare := func(stage string, x, y Backend) {
				t.Helper()
				for i, boxes := range probes {
					want, err := x.Estimate(boxes)
					if err != nil {
						t.Fatal(err)
					}
					got, err := y.Estimate(boxes)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("%s: probe %d: estimates diverge: %g vs %g", stage, i, got, want)
					}
				}
			}
			compare("after restore", b, r)

			// Continue learning on two independent restores: the daemon's
			// background trainer always observes into a restored clone, so
			// this — not learning on the original, whose PRNG stream has
			// advanced past the snapshot for the quicksel method — is the
			// determinism the serving chain depends on.
			r2, err := Restore(method, state)
			if err != nil {
				t.Fatal(err)
			}
			extra := box(0.3, 0.3, 0.9, 0.9)
			for _, bk := range []Backend{r, r2} {
				if err := bk.Observe(extra, 0.2); err != nil {
					t.Fatal(err)
				}
				if err := bk.Train(); err != nil {
					t.Fatal(err)
				}
			}
			compare("after restore+learn", r, r2)
		})
	}
}

func TestUnknownMethod(t *testing.T) {
	_, err := New(Config{Method: "histogrm", Dim: 2})
	if err == nil {
		t.Fatal("New accepted unknown method")
	}
	var ume *UnknownMethodError
	if !errAs(err, &ume) {
		t.Fatalf("error %T is not *UnknownMethodError", err)
	}
	for _, m := range Methods() {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("error %q does not list valid method %q", err, m)
		}
	}
	if _, err := Restore("histogrm", []byte("{}")); err == nil {
		t.Error("Restore accepted unknown method")
	}
}

// errAs avoids importing errors just for one assertion.
func errAs(err error, target **UnknownMethodError) bool {
	u, ok := err.(*UnknownMethodError)
	if ok {
		*target = u
	}
	return ok
}

func TestDefaultMethodIsQuickSel(t *testing.T) {
	b, err := New(Config{Dim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Method() != QuickSel {
		t.Errorf("default method = %q, want %q", b.Method(), QuickSel)
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	for _, method := range Methods() {
		if _, err := Restore(method, nil); err == nil {
			t.Errorf("%s: Restore accepted empty state", method)
		}
		if _, err := Restore(method, []byte(`{"dim": -1`)); err == nil {
			t.Errorf("%s: Restore accepted truncated JSON", method)
		}
	}
	// A scan snapshot with an out-of-range event selectivity must be
	// rejected rather than replayed.
	bad := []byte(`{"config": {"dim": 2, "rows_per_observation": 8}, "events": [{"lo": [0,0], "hi": [1,1], "sel": 7}]}`)
	if _, err := Restore(Sample, bad); err == nil {
		t.Error("Restore(sample) accepted out-of-range event selectivity")
	}
}

// TestScanBackendCompaction pushes a scan backend far past its event-log
// bound and checks the invariants compaction must keep: the log and
// synthetic table stay bounded, the total-observed counter does not, and
// snapshot round-trips remain bit-identical mid-stream.
func TestScanBackendCompaction(t *testing.T) {
	for _, method := range []string{Sample, ScanHist} {
		t.Run(method, func(t *testing.T) {
			b, err := New(Config{Method: method, Dim: 2, Seed: 11, RowsPerObservation: 2, SampleSize: 64, GridBuckets: 64})
			if err != nil {
				t.Fatal(err)
			}
			sb := b.(*scanBackend)
			n := maxScanEvents + maxScanEvents/2 + 17
			for i := 0; i < n; i++ {
				o := trainingStream[i%len(trainingStream)]
				if err := b.Observe(o.box, o.sel); err != nil {
					t.Fatal(err)
				}
			}
			if sb.generation == 0 {
				t.Error("no compaction happened past the log bound")
			}
			if len(sb.events) > maxScanEvents {
				t.Errorf("event log has %d entries, bound is %d", len(sb.events), maxScanEvents)
			}
			if rows := sb.tbl.Rows(); rows > maxScanEvents*sb.cfg.RowsPerObservation {
				t.Errorf("synthetic table has %d rows, want bounded", rows)
			}
			if got := b.Stats().Observed; got != n {
				t.Errorf("Stats().Observed = %d, want %d (must survive compaction)", got, n)
			}

			state, err := b.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			r, err := Restore(method, state)
			if err != nil {
				t.Fatal(err)
			}
			// Restored and original must agree now AND keep agreeing as the
			// stream continues (same stream positions, same future
			// compaction points).
			for step := 0; step < 3; step++ {
				for i, boxes := range probes {
					want, _ := b.Estimate(boxes)
					got, _ := r.Estimate(boxes)
					if got != want {
						t.Fatalf("step %d probe %d: restored %g, original %g", step, i, got, want)
					}
				}
				o := trainingStream[step%len(trainingStream)]
				for _, bk := range []Backend{b, r} {
					if err := bk.Observe(o.box, o.sel); err != nil {
						t.Fatal(err)
					}
					if err := bk.Train(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

func TestObserveValidation(t *testing.T) {
	for _, method := range Methods() {
		b, err := New(Config{Method: method, Dim: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(geom.Box{Lo: []float64{0}, Hi: []float64{1}}, 0.5); err == nil {
			t.Errorf("%s: Observe accepted wrong-dimension box", method)
		}
		if err := b.Observe(box(0, 0, 1, 1), math.NaN()); err == nil {
			t.Errorf("%s: Observe accepted NaN selectivity", method)
		}
	}
}
