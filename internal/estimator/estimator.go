// Package estimator defines the pluggable selectivity-estimation backend
// behind the public quicksel API and the quickseld serving daemon. Every
// method of the paper's evaluation (§5.1) — QuickSel itself plus the
// sampling, scan-histogram, STHoles, ISOMER, and max-entropy baselines —
// implements one Backend contract, so the daemon can serve any of them
// behind the same HTTP surface and the benchmark CLI can race them over the
// same workload.
//
// The contract deliberately speaks the repository's geometric currency:
// predicates arrive already lowered to disjoint normalized boxes
// (internal/predicate), an observation is one (box, selectivity) feedback
// record, and an estimate is requested for a union of disjoint boxes.
//
// Backends are not safe for concurrent use; the public quicksel.Estimator
// and the server registry serialize access.
package estimator

import (
	"encoding/json"
	"fmt"
	"sort"

	"quicksel/internal/core"
	"quicksel/internal/geom"
	"quicksel/internal/lifecycle"
)

// Method names accepted by New and recorded in snapshots.
const (
	// QuickSel is the paper's method: a uniform mixture model fitted by a
	// penalized quadratic program (internal/core). Best accuracy per
	// parameter in the paper's comparison; training costs one SPD solve.
	QuickSel = "quicksel"
	// STHoles is the error-feedback histogram baseline (internal/sthole):
	// cheap per-observation updates and a bounded bucket tree, at the
	// accuracy loss Figure 4 reports.
	STHoles = "sthole"
	// Isomer is the ISOMER max-entropy histogram (internal/isomer) running
	// the published iterative-scaling update. Strong accuracy; the disjoint
	// partition grows multiplicatively with observed queries.
	Isomer = "isomer"
	// MaxEnt is the same max-entropy histogram solved with the optimized
	// incremental iterative-scaling update (internal/maxent): the same fixed
	// point as Isomer at a much lower per-iteration cost.
	MaxEnt = "maxent"
	// Sample is the AutoSample baseline (internal/sample) over a synthetic
	// table materialized from the feedback stream; see scan.go.
	Sample = "sample"
	// ScanHist is the AutoHist equiwidth-grid baseline (internal/scanhist)
	// over the same synthetic table.
	ScanHist = "scanhist"
)

// Methods returns the valid method names, sorted.
func Methods() []string {
	out := []string{QuickSel, STHoles, Isomer, MaxEnt, Sample, ScanHist}
	sort.Strings(out)
	return out
}

// UnknownMethodError reports a method name that no backend implements. Its
// message lists the valid names so API clients can self-correct.
type UnknownMethodError struct{ Method string }

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("estimator: unknown method %q (valid methods: %v)", e.Method, Methods())
}

// Config tunes a backend at construction time. Dim is required; every other
// field keeps its method's default when zero, and fields for other methods
// are ignored.
type Config struct {
	// Method selects the backend; "" means QuickSel.
	Method string
	// Dim is the dimensionality of the normalized domain.
	Dim int
	// Seed drives every pseudo-random draw (QuickSel subpopulation
	// generation, the scan-backed synthetic rows). Backends are fully
	// deterministic in it.
	Seed int64

	// QuickSel knobs; see the core package for semantics and defaults.
	MaxSubpops         int
	SubpopsPerQuery    int
	FixedSubpops       int
	PointsPerPredicate int
	Lambda             float64
	UseIterativeSolver bool
	Workers            int
	WarmStart          bool
	MaxObservations    int
	MergeThreshold     float64

	// MaxBuckets bounds the bucket tree (STHoles) or the disjoint partition
	// (Isomer, MaxEnt). 0 keeps the method's serving default.
	MaxBuckets int

	// SampleSize is the row budget of the Sample backend (default 1000).
	SampleSize int
	// GridBuckets is the cell budget of the ScanHist backend (default 1000).
	GridBuckets int
	// RowsPerObservation is how many synthetic rows the scan-backed methods
	// materialize per feedback record (default 128).
	RowsPerObservation int

	// Lifecycle carries the model-lifecycle knobs (retrain policy, drift
	// threshold, accuracy window, version history). Backends ignore it; the
	// public Estimator and the serving registry consume it.
	Lifecycle lifecycle.Config

	// WAL carries the write-ahead-log knobs (directory, fsync policy,
	// segment size). Backends ignore it; the public Estimator consumes it
	// to append observations durably and replay them on restart.
	WAL WALConfig
}

// WALConfig is the write-ahead-log tuning carried by Config. A zero Dir
// disables the log; the other fields keep the wal package defaults when
// zero.
type WALConfig struct {
	Dir         string
	Sync        string
	SegmentSize int64
}

// Stats is the common status snapshot every backend reports.
type Stats struct {
	// Method is the backend's method name.
	Method string `json:"method"`
	// Observed counts the feedback records absorbed so far.
	Observed int `json:"observed"`
	// Params counts the model parameters the method currently holds
	// (subpopulation weights, bucket frequencies, sampled coordinates, or
	// grid cells — the quantity Figure 4 of the paper tracks).
	Params int `json:"params"`
}

// Backend is the pluggable estimator contract. Observe ingests one
// (normalized box, true selectivity) feedback record; Estimate answers the
// selectivity of a union of disjoint normalized boxes; Train forces the
// method's fitting/refresh step (methods that train lazily or eagerly treat
// it as a refresh); Snapshot serializes the full state for Restore.
type Backend interface {
	Method() string
	Dim() int
	Observe(box geom.Box, sel float64) error
	Estimate(boxes []geom.Box) (float64, error)
	Train() error
	Snapshot() (json.RawMessage, error)
	Stats() Stats
}

// New builds a backend for cfg.Method.
func New(cfg Config) (Backend, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("estimator: Dim must be >= 1, got %d", cfg.Dim)
	}
	switch cfg.Method {
	case "", QuickSel:
		return newQuickSel(cfg)
	case STHoles:
		return newSTHoles(cfg)
	case Isomer, MaxEnt:
		return newIsomer(cfg)
	case Sample, ScanHist:
		return newScan(cfg)
	default:
		return nil, &UnknownMethodError{Method: cfg.Method}
	}
}

// Restore rebuilds a backend of the given method from the state produced by
// its Snapshot. The restored backend serves bit-identical estimates.
func Restore(method string, state json.RawMessage) (Backend, error) {
	if len(state) == 0 {
		return nil, fmt.Errorf("estimator: empty %q backend state", method)
	}
	switch method {
	case "", QuickSel:
		return restoreQuickSel(state)
	case STHoles:
		return restoreSTHoles(state)
	case Isomer, MaxEnt:
		return restoreIsomer(method, state)
	case Sample, ScanHist:
		return restoreScan(method, state)
	default:
		return nil, &UnknownMethodError{Method: method}
	}
}

// lazyFitter is implemented by backends whose Estimate pays a deferred
// fitting step when observations are pending (QuickSel's QP solve, the
// max-entropy scaling solve). Incremental backends don't implement it.
type lazyFitter interface {
	fitPending() bool
}

// FitPending reports whether the backend holds observations it has not yet
// fitted — i.e. whether its next Estimate would trigger a lazy training
// pass. The accuracy tracker uses this to skip realized-accuracy sampling
// rather than force a refit on the observe path.
func FitPending(b Backend) bool {
	if lf, ok := b.(lazyFitter); ok {
		return lf.fitPending()
	}
	return false
}

// cloner is implemented by backends that can deep-copy themselves in
// process, preserving state a snapshot round trip would lose (QuickSel's
// warm-start factorization).
type cloner interface {
	cloneBackend() Backend
}

// Clone returns an independent copy of the backend. Backends that implement
// the in-process cloner keep their full state (including the warm-start
// factorization); every other backend round-trips through Snapshot/Restore,
// which is state-equivalent by the snapshot contract.
func Clone(b Backend) (Backend, error) {
	if c, ok := b.(cloner); ok {
		return c.cloneBackend(), nil
	}
	state, err := b.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("estimator: clone snapshot: %w", err)
	}
	return Restore(b.Method(), state)
}

// trainModer is implemented by backends that distinguish incremental from
// full training runs.
type trainModer interface {
	trainMode() string
}

// TrainMode reports how the backend's last Train call fitted the model:
// "incremental" when it re-solved from kept state, "full" otherwise. Every
// backend without an incremental path refits from its whole state, which is
// a full train by definition.
func TrainMode(b Backend) string {
	if tm, ok := b.(trainModer); ok {
		if mode := tm.trainMode(); mode != "" {
			return mode
		}
	}
	return core.TrainModeFull
}

// estimateDisjoint sums a per-box estimator over disjoint boxes and clamps
// to [0, 1]; the shared union path of every histogram-style backend.
func estimateDisjoint(boxes []geom.Box, one func(geom.Box) (float64, error)) (float64, error) {
	var total float64
	for _, b := range boxes {
		sel, err := one(b)
		if err != nil {
			return 0, err
		}
		total += sel
	}
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}
