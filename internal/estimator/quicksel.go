package estimator

import (
	"encoding/json"
	"fmt"

	"quicksel/internal/core"
	"quicksel/internal/geom"
)

// quickselBackend adapts the paper's mixture model (internal/core) to the
// Backend contract. It is the default method and the accuracy/parameter
// sweet spot of the evaluation: training pays one SPD solve, estimates run
// on the compiled allocation-free path.
type quickselBackend struct {
	m *core.Model
}

func newQuickSel(cfg Config) (*quickselBackend, error) {
	m, err := core.New(core.Config{
		Dim:                cfg.Dim,
		Seed:               cfg.Seed,
		MaxSubpops:         cfg.MaxSubpops,
		SubpopsPerQuery:    cfg.SubpopsPerQuery,
		FixedSubpops:       cfg.FixedSubpops,
		PointsPerPredicate: cfg.PointsPerPredicate,
		Lambda:             cfg.Lambda,
		UseIterativeSolver: cfg.UseIterativeSolver,
		Workers:            cfg.Workers,
		WarmStart:          cfg.WarmStart,
		MaxObservations:    cfg.MaxObservations,
		MergeThreshold:     cfg.MergeThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &quickselBackend{m: m}, nil
}

// NewQuickSelFromModelSnapshot rebuilds the QuickSel backend from a core
// model snapshot. The public package uses this to keep the model state as a
// typed field of its snapshot envelope rather than an opaque blob.
func NewQuickSelFromModelSnapshot(s *core.Snapshot) (Backend, error) {
	m, err := core.Restore(s)
	if err != nil {
		return nil, err
	}
	return &quickselBackend{m: m}, nil
}

// ModelSnapshot exposes the typed core snapshot when the backend is the
// QuickSel method; it returns nil for every other backend.
func ModelSnapshot(b Backend) *core.Snapshot {
	if qb, ok := b.(*quickselBackend); ok {
		return qb.m.Snapshot()
	}
	return nil
}

func (b *quickselBackend) Method() string { return QuickSel }
func (b *quickselBackend) Dim() int       { return b.m.Dim() }

func (b *quickselBackend) Observe(box geom.Box, sel float64) error {
	return b.m.Observe(box, sel)
}

func (b *quickselBackend) Estimate(boxes []geom.Box) (float64, error) {
	return b.m.EstimateUnion(boxes)
}

func (b *quickselBackend) Train() error { return b.m.Train() }

func (b *quickselBackend) fitPending() bool { return b.m.NeedsTraining() }

func (b *quickselBackend) trainMode() string { return b.m.TrainMode() }

// cloneBackend deep-copies the model in process, keeping the warm-start
// factorization a snapshot round trip would drop.
func (b *quickselBackend) cloneBackend() Backend { return &quickselBackend{m: b.m.Clone()} }

func (b *quickselBackend) Snapshot() (json.RawMessage, error) {
	return json.Marshal(b.m.Snapshot())
}

func restoreQuickSel(state json.RawMessage) (Backend, error) {
	var s core.Snapshot
	if err := json.Unmarshal(state, &s); err != nil {
		return nil, fmt.Errorf("estimator: decode quicksel state: %w", err)
	}
	return NewQuickSelFromModelSnapshot(&s)
}

func (b *quickselBackend) Stats() Stats {
	return Stats{Method: QuickSel, Observed: b.m.NumObserved(), Params: b.m.ParamCount()}
}
