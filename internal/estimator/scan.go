package estimator

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"quicksel/internal/geom"
	"quicksel/internal/predicate"
	"quicksel/internal/sample"
	"quicksel/internal/scanhist"
	"quicksel/internal/table"
)

// Serving defaults for the scan-based backends.
const (
	// DefaultSampleSize is the row budget of the Sample backend.
	DefaultSampleSize = 1000
	// DefaultGridBuckets is the cell budget of the ScanHist backend.
	DefaultGridBuckets = 1000
	// DefaultRowsPerObservation is how many synthetic rows one feedback
	// record materializes.
	DefaultRowsPerObservation = 128

	// maxScanEvents bounds the replayable event log (and with it the
	// synthetic table, snapshot size, and per-restore replay cost — every
	// other per-estimator structure in the daemon is bounded too). When the
	// log exceeds the bound, the backend compacts: it bumps its generation,
	// re-derives its random streams from (seed, generation), and rebuilds
	// the table and statistics from the most recent half of the log — a
	// sliding window over recent feedback, in the spirit of the baselines'
	// own auto-refresh rules.
	maxScanEvents = 4096
	// scanSeedStride separates the per-generation random streams.
	scanSeedStride = 1_000_003
)

// scanBackend adapts the paper's scan-based baselines — AutoSample
// (internal/sample) and AutoHist (internal/scanhist) — to the query-driven
// Backend contract. Those methods scan a base table, but a serving daemon
// only sees (predicate, selectivity) feedback; the adapter bridges the gap
// by materializing a synthetic table consistent with the feedback stream:
// each observation of selectivity s over box B inserts round(s·R) rows
// uniform in B and up to R−round(s·R) rows uniform outside it (R =
// RowsPerObservation). The wrapped baseline then runs unchanged over that
// table, including its auto-update statistics rule (resample/rebuild when
// the table changes beyond its threshold).
//
// Every draw comes from a generator derived from (seed, generation), and
// the backend's state is a bounded replayable event log, so
// Snapshot/Restore is bit-identical: restoring replays the log through the
// exact construction-time code path, stream positions included.
type scanBackend struct {
	method     string
	cfg        scanConfig
	schema     *predicate.Schema
	generation int
	nObs       int // total observations absorbed, across compactions

	// Derived state, rebuilt on compaction and restore.
	rng    *rand.Rand
	tbl    *table.Table
	smp    *sample.Sampler
	hist   *scanhist.Histogram
	events []scanEvent
}

// scanConfig is the serialized configuration of a scan backend.
type scanConfig struct {
	Dim                int   `json:"dim"`
	Seed               int64 `json:"seed"`
	SampleSize         int   `json:"sample_size,omitempty"`
	GridBuckets        int   `json:"grid_buckets,omitempty"`
	RowsPerObservation int   `json:"rows_per_observation"`
}

// scanEvent is one replayable state transition: a feedback observation, or
// a forced statistics refresh (Train).
type scanEvent struct {
	Refresh bool      `json:"refresh,omitempty"`
	Lo      []float64 `json:"lo,omitempty"`
	Hi      []float64 `json:"hi,omitempty"`
	Sel     float64   `json:"sel,omitempty"`
}

// scanSnapshot is the JSON state of a scan backend: configuration, the
// compaction generation, the total-observations counter, and the (bounded)
// event window Restore replays.
type scanSnapshot struct {
	Config     scanConfig  `json:"config"`
	Generation int         `json:"generation,omitempty"`
	Observed   int         `json:"observed,omitempty"`
	Events     []scanEvent `json:"events"`
}

// unitSchema returns a d-column schema over [0,1] real columns, making the
// synthetic table's raw coordinates coincide with normalized ones.
func unitSchema(d int) (*predicate.Schema, error) {
	cols := make([]predicate.Column, d)
	for i := range cols {
		cols[i] = predicate.Column{Name: fmt.Sprintf("x%d", i), Kind: predicate.Real, Min: 0, Max: 1}
	}
	return predicate.NewSchema(cols...)
}

func newScan(cfg Config) (*scanBackend, error) {
	sc := scanConfig{
		Dim:                cfg.Dim,
		Seed:               cfg.Seed,
		RowsPerObservation: cfg.RowsPerObservation,
	}
	if sc.RowsPerObservation <= 0 {
		sc.RowsPerObservation = DefaultRowsPerObservation
	}
	if cfg.Method == Sample {
		sc.SampleSize = cfg.SampleSize
		if sc.SampleSize <= 0 {
			sc.SampleSize = DefaultSampleSize
		}
	} else {
		sc.GridBuckets = cfg.GridBuckets
		if sc.GridBuckets <= 0 {
			sc.GridBuckets = DefaultGridBuckets
		}
	}
	return buildScan(cfg.Method, sc, 0)
}

// buildScan constructs the backend with empty derived state for the given
// generation; shared by New, compaction, and the replay in Restore.
func buildScan(method string, sc scanConfig, generation int) (*scanBackend, error) {
	schema, err := unitSchema(sc.Dim)
	if err != nil {
		return nil, fmt.Errorf("estimator: %s backend: %w", method, err)
	}
	b := &scanBackend{method: method, cfg: sc, schema: schema, generation: generation}
	if err := b.reset(); err != nil {
		return nil, err
	}
	return b, nil
}

// reset re-derives the random streams from (seed, generation) and rebuilds
// empty table/statistics substrate.
func (b *scanBackend) reset() error {
	// The row-synthesis stream (base) is decoupled from the wrapped
	// sampler's own reservoir stream (base+1).
	base := b.cfg.Seed + int64(b.generation)*scanSeedStride
	b.rng = rand.New(rand.NewSource(base))
	b.tbl = table.New(b.schema)
	b.events = nil
	var err error
	switch b.method {
	case Sample:
		b.smp, err = sample.New(b.tbl, sample.Config{Size: b.cfg.SampleSize, Seed: base + 1})
	case ScanHist:
		b.hist, err = scanhist.New(b.tbl, scanhist.Config{Buckets: b.cfg.GridBuckets})
	default:
		return &UnknownMethodError{Method: b.method}
	}
	return err
}

func (b *scanBackend) Method() string { return b.method }
func (b *scanBackend) Dim() int       { return b.cfg.Dim }

func (b *scanBackend) Observe(box geom.Box, sel float64) error {
	if box.Dim() != b.cfg.Dim {
		return fmt.Errorf("estimator: %s observed box has dim %d, want %d", b.method, box.Dim(), b.cfg.Dim)
	}
	if err := box.Validate(); err != nil {
		return fmt.Errorf("estimator: %s observed box: %w", b.method, err)
	}
	if math.IsNaN(sel) {
		return fmt.Errorf("estimator: %s: NaN selectivity", b.method)
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	clipped := box.Clip(geom.Unit(b.cfg.Dim))
	if clipped.IsEmpty() {
		return nil
	}
	return b.apply(scanEvent{Lo: clipped.Lo, Hi: clipped.Hi, Sel: sel})
}

// Train forces a statistics refresh — a resample (AutoSample) or a rescan
// rebuild (AutoHist) — regardless of the auto-update threshold.
func (b *scanBackend) Train() error {
	return b.apply(scanEvent{Refresh: true})
}

// apply executes one live event, records it in the replay log, and compacts
// when the log outgrows its bound.
func (b *scanBackend) apply(ev scanEvent) error {
	b.exec(ev)
	if !ev.Refresh {
		b.nObs++
	}
	b.events = append(b.events, ev)
	if len(b.events) > maxScanEvents {
		return b.compact()
	}
	return nil
}

// exec performs an event's state transition (shared by the live path,
// compaction, and restore replay).
func (b *scanBackend) exec(ev scanEvent) {
	if ev.Refresh {
		if b.method == Sample {
			b.smp.Resample()
		} else {
			b.hist.Rebuild()
		}
		return
	}
	b.synthesize(geom.Box{Lo: ev.Lo, Hi: ev.Hi}, ev.Sel)
	// The wrapped baseline's own auto-update rule (AutoSample: >10% of rows
	// changed; AutoHist: SQL Server's 20% rule).
	if b.method == Sample {
		b.smp.MaybeRefresh()
	} else {
		b.hist.MaybeRefresh()
	}
}

// compact bumps the generation and rebuilds the derived state from the most
// recent half of the event log, bounding table memory, snapshot size, and
// replay cost. The post-compaction state is a pure function of (config,
// generation, retained events), which is exactly what snapshots persist.
func (b *scanBackend) compact() error {
	tail := append([]scanEvent(nil), b.events[len(b.events)-maxScanEvents/2:]...)
	b.generation++
	if err := b.reset(); err != nil {
		return err
	}
	return b.replay(tail)
}

// replay executes events and appends them to the log without triggering
// further compaction (callers pass at most maxScanEvents events).
func (b *scanBackend) replay(events []scanEvent) error {
	for _, ev := range events {
		b.exec(ev)
	}
	b.events = append(b.events, events...)
	return nil
}

// synthesize inserts RowsPerObservation synthetic rows consistent with the
// observation: round(sel·R) uniform inside the box, the rest uniform in the
// complement (rejection-sampled; a draw that cannot escape a near-full-domain
// box after 64 attempts is skipped, which only happens when sel should be
// ≈1 anyway).
func (b *scanBackend) synthesize(box geom.Box, sel float64) {
	r := b.cfg.RowsPerObservation
	inside := int(math.Round(sel * float64(r)))
	rows := make([][]float64, 0, r)
	for i := 0; i < inside; i++ {
		p := make([]float64, b.cfg.Dim)
		for d := range p {
			p[d] = box.Lo[d] + b.rng.Float64()*(box.Hi[d]-box.Lo[d])
		}
		rows = append(rows, p)
	}
	for i := inside; i < r; i++ {
		if p := b.drawOutside(box); p != nil {
			rows = append(rows, p)
		}
	}
	if err := b.tbl.Insert(rows...); err != nil {
		// Rows are built with exactly Dim coordinates; Insert cannot fail.
		panic(err)
	}
}

func (b *scanBackend) drawOutside(box geom.Box) []float64 {
	for attempt := 0; attempt < 64; attempt++ {
		p := make([]float64, b.cfg.Dim)
		for d := range p {
			p[d] = b.rng.Float64()
		}
		if !box.Contains(p) {
			return p
		}
	}
	return nil
}

func (b *scanBackend) Estimate(boxes []geom.Box) (float64, error) {
	if b.method == Sample {
		return estimateDisjoint(boxes, b.smp.Estimate)
	}
	return estimateDisjoint(boxes, b.hist.Estimate)
}

func (b *scanBackend) Snapshot() (json.RawMessage, error) {
	return json.Marshal(&scanSnapshot{
		Config:     b.cfg,
		Generation: b.generation,
		Observed:   b.nObs,
		Events:     b.events,
	})
}

func restoreScan(method string, state json.RawMessage) (Backend, error) {
	var s scanSnapshot
	if err := json.Unmarshal(state, &s); err != nil {
		return nil, fmt.Errorf("estimator: decode %s state: %w", method, err)
	}
	if s.Config.Dim < 1 {
		return nil, fmt.Errorf("estimator: %s snapshot Dim must be >= 1, got %d", method, s.Config.Dim)
	}
	if s.Config.RowsPerObservation < 1 {
		return nil, fmt.Errorf("estimator: %s snapshot RowsPerObservation must be >= 1, got %d", method, s.Config.RowsPerObservation)
	}
	if s.Generation < 0 || s.Observed < 0 || len(s.Events) > maxScanEvents {
		return nil, fmt.Errorf("estimator: %s snapshot has invalid generation/observed/log (%d/%d/%d)",
			method, s.Generation, s.Observed, len(s.Events))
	}
	for i, ev := range s.Events {
		if ev.Refresh {
			continue
		}
		box := geom.Box{Lo: ev.Lo, Hi: ev.Hi}
		if box.Dim() != s.Config.Dim {
			return nil, fmt.Errorf("estimator: %s snapshot event %d has dim %d, want %d", method, i, box.Dim(), s.Config.Dim)
		}
		if err := box.Validate(); err != nil {
			return nil, fmt.Errorf("estimator: %s snapshot event %d: %w", method, i, err)
		}
		if math.IsNaN(ev.Sel) || ev.Sel < 0 || ev.Sel > 1 {
			return nil, fmt.Errorf("estimator: %s snapshot event %d has selectivity %g", method, i, ev.Sel)
		}
	}
	b, err := buildScan(method, s.Config, s.Generation)
	if err != nil {
		return nil, err
	}
	if err := b.replay(s.Events); err != nil {
		return nil, err
	}
	b.nObs = s.Observed
	return b, nil
}

func (b *scanBackend) Stats() Stats {
	var params int
	if b.method == Sample {
		params = b.smp.ParamCount()
	} else {
		params = b.hist.ParamCount()
	}
	return Stats{Method: b.method, Observed: b.nObs, Params: params}
}
