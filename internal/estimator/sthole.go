package estimator

import (
	"encoding/json"
	"fmt"

	"quicksel/internal/geom"
	"quicksel/internal/sthole"
)

// stholeBackend adapts the STHoles error-feedback histogram. Observations
// refine the bucket tree eagerly and there is no separate fitting step, so
// Train is a no-op: the cheapest per-observation cost of the six methods,
// paid for with the lowest accuracy in the paper's comparison.
type stholeBackend struct {
	h *sthole.Histogram
}

func newSTHoles(cfg Config) (*stholeBackend, error) {
	h, err := sthole.New(sthole.Config{Dim: cfg.Dim, MaxBuckets: cfg.MaxBuckets})
	if err != nil {
		return nil, err
	}
	return &stholeBackend{h: h}, nil
}

func (b *stholeBackend) Method() string { return STHoles }
func (b *stholeBackend) Dim() int       { return b.h.Dim() }

func (b *stholeBackend) Observe(box geom.Box, sel float64) error {
	return b.h.Observe(box, sel)
}

func (b *stholeBackend) Estimate(boxes []geom.Box) (float64, error) {
	return estimateDisjoint(boxes, b.h.Estimate)
}

// Train is a no-op: STHoles drills and merges buckets at observation time.
func (b *stholeBackend) Train() error { return nil }

func (b *stholeBackend) Snapshot() (json.RawMessage, error) {
	return json.Marshal(b.h.Snapshot())
}

func restoreSTHoles(state json.RawMessage) (Backend, error) {
	var s sthole.Snapshot
	if err := json.Unmarshal(state, &s); err != nil {
		return nil, fmt.Errorf("estimator: decode sthole state: %w", err)
	}
	h, err := sthole.Restore(&s)
	if err != nil {
		return nil, err
	}
	return &stholeBackend{h: h}, nil
}

func (b *stholeBackend) Stats() Stats {
	return Stats{Method: STHoles, Observed: b.h.NumObserved(), Params: b.h.ParamCount()}
}
