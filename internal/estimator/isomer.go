package estimator

import (
	"encoding/json"
	"fmt"

	"quicksel/internal/geom"
	"quicksel/internal/isomer"
)

// DefaultIsomerBuckets is the serving default for the ISOMER/max-entropy
// partition. The offline experiments keep the package default (200,000) to
// reproduce the paper's bucket-explosion measurement; a serving daemon
// cannot afford an unbounded partition on its retrain path, so the serving
// adapters cap it far lower. Once the cap is hit, refinement freezes and
// queries that straddle existing buckets are dropped — the accuracy/cost
// trade-off §2.3 of the paper identifies as Limitation 1.
const DefaultIsomerBuckets = 8192

// isomerBackend adapts the ISOMER max-entropy histogram. Both the "isomer"
// and "maxent" methods serve the maximum-entropy distribution over the same
// query-refined partition; they differ only in the update rule that finds
// it — the published iterative scaling for "isomer", the optimized
// incremental form (internal/maxent's fast path) for "maxent". Training is
// lazy: the first estimate after new observations pays the scaling solve.
type isomerBackend struct {
	method string
	h      *isomer.Histogram
}

func newIsomer(cfg Config) (*isomerBackend, error) {
	maxBuckets := cfg.MaxBuckets
	if maxBuckets == 0 {
		maxBuckets = DefaultIsomerBuckets
	}
	h, err := isomer.New(isomer.Config{
		Dim:                cfg.Dim,
		Solver:             isomer.IterativeScaling,
		MaxBuckets:         maxBuckets,
		IncrementalScaling: cfg.Method == MaxEnt,
	})
	if err != nil {
		return nil, err
	}
	return &isomerBackend{method: cfg.Method, h: h}, nil
}

func (b *isomerBackend) Method() string { return b.method }
func (b *isomerBackend) Dim() int       { return b.h.Dim() }

func (b *isomerBackend) Observe(box geom.Box, sel float64) error {
	return b.h.Observe(box, sel)
}

func (b *isomerBackend) Estimate(boxes []geom.Box) (float64, error) {
	return estimateDisjoint(boxes, b.h.Estimate)
}

func (b *isomerBackend) Train() error { return b.h.Train() }

func (b *isomerBackend) fitPending() bool { return b.h.NeedsTraining() }

func (b *isomerBackend) Snapshot() (json.RawMessage, error) {
	return json.Marshal(b.h.Snapshot())
}

func restoreIsomer(method string, state json.RawMessage) (Backend, error) {
	var s isomer.Snapshot
	if err := json.Unmarshal(state, &s); err != nil {
		return nil, fmt.Errorf("estimator: decode %s state: %w", method, err)
	}
	h, err := isomer.Restore(&s)
	if err != nil {
		return nil, err
	}
	return &isomerBackend{method: method, h: h}, nil
}

func (b *isomerBackend) Stats() Stats {
	return Stats{Method: b.method, Observed: b.h.NumObserved(), Params: b.h.ParamCount()}
}
