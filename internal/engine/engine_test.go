package engine

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"quicksel/internal/predicate"
	"quicksel/internal/table"
)

func newPeopleTable(t *testing.T, rows int, seed int64) *table.Table {
	t.Helper()
	s := predicate.MustSchema(
		predicate.Column{Name: "age", Kind: predicate.Integer, Min: 18, Max: 90},
		predicate.Column{Name: "salary", Kind: predicate.Real, Min: 0, Max: 200000},
	)
	tb := table.New(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		age := float64(18 + rng.Intn(73))
		salary := 20000 + (age-18)*1500 + rng.Float64()*40000 // age-correlated
		if err := tb.Insert([]float64{age, salary}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestRegisterAndDrop(t *testing.T) {
	e := New(1)
	tb := newPeopleTable(t, 100, 2)
	if err := e.Register("people", tb); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("people", tb); err == nil {
		t.Error("duplicate registration must fail")
	}
	if err := e.Register("x", nil); err == nil {
		t.Error("nil table must fail")
	}
	if got := e.Tables(); len(got) != 1 || got[0] != "people" {
		t.Errorf("Tables = %v", got)
	}
	if err := e.Drop("people"); err != nil {
		t.Fatal(err)
	}
	if err := e.Drop("people"); err == nil {
		t.Error("double drop must fail")
	}
	if len(e.Tables()) != 0 {
		t.Error("table not dropped")
	}
}

func TestExecCountsAndLearns(t *testing.T) {
	e := New(3)
	tb := newPeopleTable(t, 2000, 4)
	if err := e.Register("people", tb); err != nil {
		t.Fatal(err)
	}
	p := predicate.Range(0, 30, 50)
	res, err := e.Exec("people", p)
	if err != nil {
		t.Fatal(err)
	}
	want := tb.Selectivity(p)
	if math.Abs(res.Selectivity-want) > 1e-12 {
		t.Errorf("Exec selectivity = %g, want %g", res.Selectivity, want)
	}
	if res.Rows != int(want*2000+0.5) {
		t.Errorf("Rows = %d", res.Rows)
	}
	n, err := e.ObservedCount("people")
	if err != nil || n != 1 {
		t.Errorf("ObservedCount = %d, %v", n, err)
	}
	// The learned estimate reproduces the executed query.
	if err := e.Refresh("people"); err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate("people", p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-want) > 0.05 {
		t.Errorf("Estimate = %g, want ≈%g", est, want)
	}
}

func TestExecUnknownTable(t *testing.T) {
	e := New(1)
	if _, err := e.Exec("nope", predicate.All()); err == nil {
		t.Error("expected unknown-table error")
	}
	if _, err := e.Estimate("nope", predicate.All()); err == nil {
		t.Error("expected unknown-table error")
	}
	if err := e.Refresh("nope"); err == nil {
		t.Error("expected unknown-table error")
	}
	if _, err := e.ObservedCount("nope"); err == nil {
		t.Error("expected unknown-table error")
	}
}

func TestExecBadPredicate(t *testing.T) {
	e := New(1)
	if err := e.Register("people", newPeopleTable(t, 10, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("people", predicate.Range(9, 0, 1)); err == nil {
		t.Error("expected lowering error")
	}
}

func TestDisjunctionFeedback(t *testing.T) {
	e := New(6)
	tb := newPeopleTable(t, 2000, 7)
	if err := e.Register("people", tb); err != nil {
		t.Fatal(err)
	}
	p := predicate.Or(predicate.Range(0, 18, 25), predicate.Range(0, 70, 90))
	res, err := e.Exec("people", p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate("people", p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-res.Selectivity) > 0.1 {
		t.Errorf("disjunction estimate = %g, want ≈%g", est, res.Selectivity)
	}
}

func TestEngineLearnsWorkload(t *testing.T) {
	e := New(8)
	tb := newPeopleTable(t, 5000, 9)
	if err := e.Register("people", tb); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	randPred := func() *predicate.Predicate {
		lo := float64(18 + rng.Intn(50))
		sLo := rng.Float64() * 150000
		return predicate.And(
			predicate.Range(0, lo, lo+float64(5+rng.Intn(25))),
			predicate.Range(1, sLo, sLo+30000+rng.Float64()*50000),
		)
	}
	for i := 0; i < 80; i++ {
		if _, err := e.Exec("people", randPred()); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Refresh(""); err != nil {
		t.Fatal(err)
	}
	// On held-out predicates the learned estimates beat the uniform prior.
	var errLearned, errUniform float64
	const test = 40
	for i := 0; i < test; i++ {
		p := randPred()
		truth := tb.Selectivity(p)
		est, err := e.Estimate("people", p)
		if err != nil {
			t.Fatal(err)
		}
		boxes, err := p.Boxes(tb.Schema())
		if err != nil {
			t.Fatal(err)
		}
		var uniform float64
		for _, b := range boxes {
			uniform += b.Volume()
		}
		errLearned += math.Abs(truth - est)
		errUniform += math.Abs(truth - uniform)
	}
	if errLearned >= errUniform {
		t.Errorf("learned error (%.4f) should beat uniform (%.4f)", errLearned/test, errUniform/test)
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	build := func() (*Engine, *table.Table) {
		e := New(11)
		tb := newPeopleTable(t, 2000, 12)
		if err := e.Register("people", tb); err != nil {
			t.Fatal(err)
		}
		return e, tb
	}
	e1, _ := build()
	preds := []*predicate.Predicate{
		predicate.Range(0, 20, 40),
		predicate.Range(0, 40, 60),
		predicate.AtLeast(1, 100000),
	}
	for _, p := range preds {
		if _, err := e1.Exec("people", p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e1.SaveCatalog(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh engine restored from the catalog produces the same estimates.
	e2, _ := build()
	if err := e2.LoadCatalog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	n, err := e2.ObservedCount("people")
	if err != nil || n != 3 {
		t.Fatalf("restored ObservedCount = %d, %v", n, err)
	}
	for _, p := range preds {
		a, err := e1.Estimate("people", p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.Estimate("people", p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("restored estimate differs: %g vs %g for %s", a, b, p)
		}
	}
}

func TestLoadCatalogErrors(t *testing.T) {
	e := New(13)
	if err := e.Register("people", newPeopleTable(t, 10, 14)); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadCatalog(strings.NewReader("{garbage")); err == nil {
		t.Error("expected decode error")
	}
	if err := e.LoadCatalog(strings.NewReader(`{"version": 99, "tables": {}}`)); err == nil {
		t.Error("expected version error")
	}
	// Dimension mismatch.
	bad := `{"version":1,"tables":{"people":[{"lo":[0],"hi":[1],"sel":0.5}]}}`
	if err := e.LoadCatalog(strings.NewReader(bad)); err == nil {
		t.Error("expected dimension error")
	}
	// Unknown tables are skipped silently.
	skip := `{"version":1,"tables":{"ghost":[{"lo":[0,0],"hi":[1,1],"sel":0.5}]}}`
	if err := e.LoadCatalog(strings.NewReader(skip)); err != nil {
		t.Errorf("unknown table should be skipped, got %v", err)
	}
}

func TestConcurrentExecEstimate(t *testing.T) {
	e := New(15)
	tb := newPeopleTable(t, 1000, 16)
	if err := e.Register("people", tb); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				lo := float64(18 + rng.Intn(60))
				p := predicate.Range(0, lo, lo+10)
				if _, err := e.Exec("people", p); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Estimate("people", p); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	n, err := e.ObservedCount("people")
	if err != nil || n != 80 {
		t.Errorf("ObservedCount = %d, %v", n, err)
	}
}

func TestExecWhere(t *testing.T) {
	e := New(20)
	tb := newPeopleTable(t, 2000, 21)
	if err := e.Register("people", tb); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecWhere("people", "age BETWEEN 30 AND 49")
	if err != nil {
		t.Fatal(err)
	}
	if res.Selectivity <= 0 {
		t.Errorf("selectivity = %g", res.Selectivity)
	}
	est, err := e.EstimateWhere("people", "age BETWEEN 30 AND 49")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-res.Selectivity) > 0.05 {
		t.Errorf("EstimateWhere = %g, want ≈%g", est, res.Selectivity)
	}
	if _, err := e.ExecWhere("people", "nope > 1"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := e.ExecWhere("ghost", "age > 1"); err == nil {
		t.Error("expected unknown-table error")
	}
	if _, err := e.EstimateWhere("ghost", "age > 1"); err == nil {
		t.Error("expected unknown-table error")
	}
	if _, err := e.EstimateWhere("people", "bad syntax ((("); err == nil {
		t.Error("expected parse error")
	}
}
