// Package engine is a miniature query-execution substrate reproducing the
// integration story of §6 of the paper: "most DBMS systems contain the
// module that computes actual selectivities, the module that computes
// selectivity estimates, and the API to store metadata in its system
// catalog." It provides exactly those three modules:
//
//   - Exec runs filter queries against registered tables and — like Spark's
//     FilterExec — records each predicate's actual selectivity as a side
//     effect of execution.
//   - Estimate serves selectivity estimates from the learned model, the
//     hook a cost-based optimizer would call during planning.
//   - Catalog persists the observed-query feedback (the paper's "store the
//     observed selectivities in its metastore") with JSON round-tripping,
//     so a restarted engine resumes learning where it left off.
package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"quicksel/internal/core"
	"quicksel/internal/geom"
	"quicksel/internal/predicate"
	"quicksel/internal/table"
)

// ObservedQuery is one catalog record: a lowered predicate box and the
// actual selectivity measured during execution.
type ObservedQuery struct {
	Lo  []float64 `json:"lo"`
	Hi  []float64 `json:"hi"`
	Sel float64   `json:"sel"`
}

// tableState bundles a registered table with its learning state.
type tableState struct {
	tbl      *table.Table
	model    *core.Model
	observed []ObservedQuery
}

// Engine executes filter queries over registered tables and learns
// selectivities from every execution. Safe for concurrent use.
type Engine struct {
	mu     sync.Mutex
	seed   int64
	tables map[string]*tableState
}

// New returns an empty engine. The seed makes all learned models
// deterministic.
func New(seed int64) *Engine {
	return &Engine{seed: seed, tables: map[string]*tableState{}}
}

// Register adds a table under a name. Re-registering a name is an error;
// Drop it first.
func (e *Engine) Register(name string, tbl *table.Table) error {
	if tbl == nil {
		return fmt.Errorf("engine: nil table")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; ok {
		return fmt.Errorf("engine: table %q already registered", name)
	}
	m, err := core.New(core.Config{Dim: tbl.Schema().Dim(), Seed: e.seed})
	if err != nil {
		return err
	}
	e.tables[name] = &tableState{tbl: tbl, model: m}
	return nil
}

// Drop removes a table and its learned state.
func (e *Engine) Drop(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	delete(e.tables, name)
	return nil
}

// Tables lists registered table names, sorted.
func (e *Engine) Tables() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Result reports one executed filter query.
type Result struct {
	Rows        int     // matching rows
	Selectivity float64 // actual selectivity, also fed back into the model
}

// Exec runs a filter query: it counts the rows of the named table matching
// the predicate and, as a side effect (the FilterExec hook of §6), records
// the actual selectivity in the catalog and the learned model.
func (e *Engine) Exec(tableName string, p *predicate.Predicate) (*Result, error) {
	e.mu.Lock()
	st, ok := e.tables[tableName]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", tableName)
	}
	boxes, err := p.Boxes(st.tbl.Schema())
	if err != nil {
		return nil, fmt.Errorf("engine: exec: %w", err)
	}
	sel := st.tbl.SelectivityBoxes(boxes)
	rows := int(sel*float64(st.tbl.Rows()) + 0.5)

	e.mu.Lock()
	defer e.mu.Unlock()
	for _, b := range boxes {
		// Apportion the mass by volume across disjoint pieces, matching the
		// public API's treatment of non-conjunctive predicates.
		share := sel
		if len(boxes) > 1 {
			var total float64
			for _, bb := range boxes {
				total += bb.Volume()
			}
			if total == 0 {
				continue
			}
			share = sel * b.Volume() / total
		}
		if err := st.model.Observe(b, share); err != nil {
			return nil, err
		}
		st.observed = append(st.observed, ObservedQuery{Lo: b.Lo, Hi: b.Hi, Sel: share})
	}
	return &Result{Rows: rows, Selectivity: sel}, nil
}

// Estimate returns the learned estimate for a predicate over the named
// table — the planner-side hook of §6.
func (e *Engine) Estimate(tableName string, p *predicate.Predicate) (float64, error) {
	e.mu.Lock()
	st, ok := e.tables[tableName]
	e.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", tableName)
	}
	boxes, err := p.Boxes(st.tbl.Schema())
	if err != nil {
		return 0, fmt.Errorf("engine: estimate: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return st.model.EstimateUnion(boxes)
}

// Refresh retrains the named table's model (or all tables if name is "").
// A DBMS would schedule this off the query path, like ANALYZE.
func (e *Engine) Refresh(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if name != "" {
		st, ok := e.tables[name]
		if !ok {
			return fmt.Errorf("engine: unknown table %q", name)
		}
		return st.model.Train()
	}
	for _, st := range e.tables {
		if err := st.model.Train(); err != nil {
			return err
		}
	}
	return nil
}

// ObservedCount reports how many feedback records the named table has.
func (e *Engine) ObservedCount(name string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.tables[name]
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", name)
	}
	return len(st.observed), nil
}

// catalogFile is the JSON shape of the persisted catalog.
type catalogFile struct {
	Version int                        `json:"version"`
	Tables  map[string][]ObservedQuery `json:"tables"`
}

// SaveCatalog writes all observed-query feedback as JSON — the metastore
// write of §6.
func (e *Engine) SaveCatalog(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := catalogFile{Version: 1, Tables: map[string][]ObservedQuery{}}
	for name, st := range e.tables {
		out.Tables[name] = st.observed
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadCatalog replays persisted feedback into the engine's models. Tables
// present in the catalog but not registered are skipped (they may be
// re-registered later and reloaded); dimension mismatches are errors.
func (e *Engine) LoadCatalog(r io.Reader) error {
	var in catalogFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("engine: catalog decode: %w", err)
	}
	if in.Version != 1 {
		return fmt.Errorf("engine: unsupported catalog version %d", in.Version)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, obs := range in.Tables {
		st, ok := e.tables[name]
		if !ok {
			continue
		}
		for _, o := range obs {
			box := geom.Box{Lo: o.Lo, Hi: o.Hi}
			if box.Dim() != st.tbl.Schema().Dim() {
				return fmt.Errorf("engine: catalog entry for %q has dim %d, table has %d",
					name, box.Dim(), st.tbl.Schema().Dim())
			}
			if err := box.Validate(); err != nil {
				return fmt.Errorf("engine: catalog entry for %q: %w", name, err)
			}
			if err := st.model.Observe(box, o.Sel); err != nil {
				return err
			}
			st.observed = append(st.observed, o)
		}
	}
	return nil
}

// ExecWhere is Exec with a parsed WHERE clause (see predicate.Parse).
func (e *Engine) ExecWhere(tableName, where string) (*Result, error) {
	e.mu.Lock()
	st, ok := e.tables[tableName]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", tableName)
	}
	p, err := predicate.Parse(st.tbl.Schema(), where)
	if err != nil {
		return nil, err
	}
	return e.Exec(tableName, p)
}

// EstimateWhere is Estimate with a parsed WHERE clause.
func (e *Engine) EstimateWhere(tableName, where string) (float64, error) {
	e.mu.Lock()
	st, ok := e.tables[tableName]
	e.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", tableName)
	}
	p, err := predicate.Parse(st.tbl.Schema(), where)
	if err != nil {
		return 0, err
	}
	return e.Estimate(tableName, p)
}
