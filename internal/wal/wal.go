// Package wal implements the append-only, CRC32C-framed, segment-rotated
// write-ahead log behind quicksel's durability story. The quickseld serving
// registry logs every acknowledged observation (plus estimator creates,
// drops, and lifecycle events) through one Log; the public quicksel API
// offers the same machinery to library embedders via WithWAL.
//
// # Format
//
// A log is a directory of segment files named wal-<first-seq, 16 hex
// digits>.seg. Segments hold a dense run of frames:
//
//	offset 0  uint32 LE  n: length of the body
//	offset 4  uint32 LE  CRC32C (Castagnoli) of the body
//	offset 8  byte       record type (opaque to this package)
//	offset 9  uint64 LE  sequence number
//	offset 17 [n-9]byte  payload (opaque to this package)
//
// Sequence numbers start at 1 and increase by exactly one across the whole
// log, never resetting across restarts or rotations: the active segment's
// file name pins the tail position even when every record has been
// compacted away. A frame that fails its CRC, runs past the file, or breaks
// the sequence run marks the end of usable data: in the newest segment that
// is the torn tail of a crashed append and is truncated away on Open; in an
// older (immutable, rotation-closed) segment it is real corruption and Open
// refuses the log rather than silently dropping the records behind it.
//
// # Group commit
//
// Append coalesces concurrent callers: records are framed into a shared
// in-memory batch under the log lock, and the first waiter through the
// flush lock becomes the leader, writing the whole staged batch — its own
// records and every concurrent appender's — with one write (and, for
// SyncAlways, one fsync). N concurrent observe calls cost one syscall, not
// N, and no cross-goroutine wakeup sits on the append path. Append returns
// once the batch reaches the log's durability point: the fsync for
// SyncAlways, the OS page cache (surviving a killed process, not a killed
// machine) for SyncInterval and SyncNever. SyncInterval additionally
// fsyncs in the background every SyncInterval, off the append path; a
// background goroutine also drains records appended without waiting.
//
// # Compaction
//
// Compact(upTo) deletes whole segments whose records all have seq <= upTo —
// records made redundant by a snapshot that already covers them. The active
// segment is never deleted. Replay streams the retained records back in
// sequence order.
//
// A Log is safe for concurrent Append/Stats/Compact. Replay must not run
// concurrently with Append; callers replay before serving traffic.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"quicksel/internal/obs"
)

// Policy names the fsync discipline of a Log.
type Policy string

const (
	// SyncAlways fsyncs every group-commit batch before acknowledging it:
	// an acked append survives machine power loss.
	SyncAlways Policy = "always"
	// SyncInterval acknowledges after write(2) and fsyncs in the background
	// every Options.SyncInterval: an acked append survives a killed process;
	// at most one interval of acked appends is exposed to machine loss. The
	// default.
	SyncInterval Policy = "interval"
	// SyncNever acknowledges after write(2) and never fsyncs; the OS flushes
	// on its own schedule.
	SyncNever Policy = "never"
)

// Policies returns the valid fsync policy names.
func Policies() []string {
	return []string{string(SyncAlways), string(SyncInterval), string(SyncNever)}
}

// ParsePolicy validates a policy name; "" selects SyncInterval.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", SyncInterval:
		return SyncInterval, nil
	case SyncAlways:
		return SyncAlways, nil
	case SyncNever:
		return SyncNever, nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (valid policies: %v)", s, Policies())
	}
}

// Defaults for Options fields left zero.
const (
	DefaultSegmentSize  = 64 << 20 // 64 MiB
	DefaultSyncInterval = 100 * time.Millisecond
)

// frameHeaderSize is the fixed prefix (length + CRC) of every frame;
// frameBodyOverhead is the type byte and sequence number inside the body.
const (
	frameHeaderSize   = 8
	frameBodyOverhead = 9
	// MaxPayload bounds one record's payload; larger appends are rejected
	// up front rather than producing a frame the scanner would refuse.
	MaxPayload = 16 << 20
)

// Options tunes a Log. The zero value of every field selects its default.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (default 64 MiB). The
	// threshold is soft: rotation happens between group-commit batches, so a
	// segment may exceed it by at most one batch.
	SegmentSize int64
	// Sync is the fsync policy; "" means SyncInterval.
	Sync Policy
	// SyncInterval is the background fsync cadence under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration

	// InitialSeq is the sequence number of the first record ever appended,
	// used only when the directory holds no segments (0 selects 1, the
	// default). A replication follower bootstrapping from a primary snapshot
	// that covers sequence C opens its local log with InitialSeq C+1, so the
	// records it fetches keep the primary's numbering; the same applies to a
	// primary whose log directory was lost but whose snapshot survived.
	InitialSeq uint64

	// AppendHist and FsyncHist, when non-nil, record the latency of
	// group-commit segment writes and of fsync(2) calls — the two syscalls
	// on the durability path. Nil skips recording (obs histograms are
	// nil-safe), so embedders pay nothing for telemetry they did not ask
	// for.
	AppendHist *obs.Histogram
	FsyncHist  *obs.Histogram
}

func (o Options) withDefaults() (Options, error) {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	p, err := ParsePolicy(string(o.Sync))
	if err != nil {
		return o, err
	}
	o.Sync = p
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	return o, nil
}

// Record is one log entry. Type and Payload are opaque to this package; Seq
// is assigned by the Log on append and reported back on replay.
type Record struct {
	Type    byte
	Seq     uint64
	Payload []byte
}

// segment is the metadata of one on-disk segment file.
type segment struct {
	path    string
	base    uint64 // seq encoded in the file name (first seq it may hold)
	first   uint64 // seq of the first record (0 when empty)
	last    uint64 // seq of the last record (0 when empty)
	size    int64
	records int
}

// waiter is one Append blocked on the durability point.
type waiter struct {
	seq uint64
	ch  chan error
}

// Stats is a point-in-time snapshot of a Log's counters and watermarks.
type Stats struct {
	// Appended counts records accepted by Append/Enqueue.
	Appended uint64 `json:"appended"`
	// Flushes counts group-commit write batches; Appended/Flushes is the
	// realized group-commit fan-in.
	Flushes uint64 `json:"flushes"`
	// Fsyncs counts fsync(2) calls on segment files.
	Fsyncs uint64 `json:"fsyncs"`
	// Rotations counts segment rollovers.
	Rotations uint64 `json:"rotations"`
	// CompactedSegments counts segment files deleted by Compact.
	CompactedSegments uint64 `json:"compacted_segments"`
	// TruncatedBytes counts torn-tail bytes dropped at Open.
	TruncatedBytes uint64 `json:"truncated_bytes"`
	// Segments and SizeBytes describe the retained on-disk footprint.
	Segments  int   `json:"segments"`
	SizeBytes int64 `json:"size_bytes"`
	// FirstSeq is the oldest retained record (0 when none); LastSeq the
	// newest assigned; DurableSeq the acknowledgment watermark (synced for
	// SyncAlways, written otherwise); SyncedSeq the fsync watermark.
	FirstSeq   uint64 `json:"first_seq"`
	LastSeq    uint64 `json:"last_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	SyncedSeq  uint64 `json:"synced_seq"`
}

// Log is an open write-ahead log. Create one with Open and stop it with
// Close, which flushes every acknowledged batch.
type Log struct {
	dir  string
	opts Options

	// flushMu serializes flushes: exactly one goroutine — a waiting
	// appender driving its own batch (the leader of the group commit) or
	// the background goroutine — performs file I/O at a time. Held across
	// write, rotate, and fsync; never while holding mu.
	flushMu sync.Mutex

	mu       sync.Mutex
	segs     []segment // rotated (immutable) segments, oldest first
	active   segment   // the segment being appended to
	f        *os.File  // active segment file (guarded by flushMu)
	buf      []byte    // framed records awaiting the writer
	spare    []byte    // recycled staging storage (double buffering)
	bufFirst uint64
	bufLast  uint64
	nextSeq  uint64
	written  uint64 // highest seq handed to write(2)
	synced   uint64 // highest seq covered by an fsync
	werr     error  // sticky writer error; fails all future appends
	closed   bool
	waiters  []waiter

	appended, flushes, fsyncs, rotations, compacted, truncated uint64

	done  chan struct{}
	wg    sync.WaitGroup
	stopO sync.Once
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", base))
}

// Open creates or reopens the log in dir. Reopening scans every retained
// segment, verifies CRCs and sequence continuity, truncates a torn tail
// left by a crash, and resumes appending after the last valid record.
func Open(dir string, opts Options) (*Log, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		done: make(chan struct{}),
	}
	if err := l.scanDir(); err != nil {
		return nil, err
	}
	l.f, err = os.OpenFile(l.active.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(l.active.size, io.SeekStart); err != nil {
		l.f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// scanDir loads segment metadata, validates the record run, and truncates a
// torn tail in the newest segment.
func (l *Log) scanDir() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var base uint64
		if _, err := fmt.Sscanf(name, "wal-%016x.seg", &base); err != nil || base == 0 {
			return fmt.Errorf("wal: unrecognized segment file name %q", name)
		}
		segs = append(segs, segment{path: filepath.Join(l.dir, name), base: base})
	}
	if len(segs) == 0 {
		l.nextSeq = 1
		if l.opts.InitialSeq > 1 {
			l.nextSeq = l.opts.InitialSeq
		}
		l.active = segment{path: segPath(l.dir, l.nextSeq), base: l.nextSeq}
		return nil
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	expect := segs[0].base
	for i := range segs {
		s := &segs[i]
		if s.base != expect {
			return fmt.Errorf("wal: segment %s starts at seq %d, want %d (gap or duplicate)", s.path, s.base, expect)
		}
		res, err := scanSegment(s.path, 0, nil)
		if err != nil {
			return err
		}
		if res.torn {
			if i != len(segs)-1 {
				// Rotated segments are immutable: a bad frame here is not a
				// crashed append but corruption, and the records behind it
				// would be silently lost if we truncated.
				return fmt.Errorf("wal: segment %s is corrupt at offset %d (not the newest segment; refusing to drop %d trailing bytes)",
					s.path, res.good, res.size-res.good)
			}
			if err := os.Truncate(s.path, res.good); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", s.path, err)
			}
			l.truncated += uint64(res.size - res.good)
			res.size = res.good
		}
		if res.records > 0 && res.first != s.base {
			return fmt.Errorf("wal: segment %s first record has seq %d, want %d", s.path, res.first, s.base)
		}
		s.first, s.last, s.size, s.records = res.first, res.last, res.size, res.records
		if s.records > 0 {
			expect = s.last + 1
		}
	}
	l.segs = segs[:len(segs)-1]
	l.active = segs[len(segs)-1]
	l.nextSeq = expect
	return nil
}

// scanResult reports one sequential pass over a segment file.
type scanResult struct {
	records     int
	first, last uint64
	good        int64 // offset just past the last valid frame
	size        int64 // file size
	torn        bool  // a bad frame stopped the scan before EOF
}

// scanSegment walks a segment's frames, verifying length, CRC, and the
// dense sequence run. When fn is non-nil it is invoked for every record with
// seq >= from; fn errors abort the scan. The payload passed to fn is only
// valid during the call.
func scanSegment(path string, from uint64, fn func(Record) error) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: %w", err)
	}
	res := scanResult{size: info.Size()}
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [frameHeaderSize]byte
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err != io.EOF {
				res.torn = true
			}
			return res, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n < frameBodyOverhead || n > frameBodyOverhead+MaxPayload {
			res.torn = true
			return res, nil
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			res.torn = true
			return res, nil
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			res.torn = true
			return res, nil
		}
		seq := binary.LittleEndian.Uint64(body[1:9])
		if res.records > 0 && seq != res.last+1 {
			res.torn = true
			return res, nil
		}
		if res.records == 0 {
			res.first = seq
		}
		res.last = seq
		res.records++
		res.good += int64(frameHeaderSize + n)
		if fn != nil && seq >= from {
			if err := fn(Record{Type: body[0], Seq: seq, Payload: body[frameBodyOverhead:]}); err != nil {
				return res, err
			}
		}
	}
}

// ErrShortFrame reports a frame cut off before its declared length — the
// tail of a partial read or a torn replication response. The bytes before
// it are intact; the caller resumes from the record after the last complete
// frame.
var ErrShortFrame = errors.New("wal: short frame")

// ErrCompacted reports a read of records that compaction has already
// deleted. A replication follower receiving it is behind the primary's
// compaction floor and must re-bootstrap from a snapshot instead of
// tailing the log.
var ErrCompacted = errors.New("wal: records compacted away")

// EncodeFrame appends rec in the on-disk frame format (length, CRC32C,
// type, seq, payload) to dst. It is the wire format of WAL shipping: a
// replication response is a dense run of these frames.
func EncodeFrame(dst []byte, rec Record) []byte {
	return appendFrame(dst, rec.Type, rec.Seq, rec.Payload)
}

// DecodeFrame parses the first frame in data, returning the record and the
// number of bytes consumed. ErrShortFrame means data ends before the frame
// does (read more and retry); any other error means the bytes are not a
// valid frame (CRC mismatch, absurd length). The record's payload aliases
// data and is only valid while data is.
func DecodeFrame(data []byte) (Record, int, error) {
	if len(data) < frameHeaderSize {
		return Record{}, 0, ErrShortFrame
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n < frameBodyOverhead || n > frameBodyOverhead+MaxPayload {
		return Record{}, 0, fmt.Errorf("wal: invalid frame length %d", n)
	}
	if len(data) < frameHeaderSize+int(n) {
		return Record{}, 0, ErrShortFrame
	}
	body := data[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, fmt.Errorf("wal: frame CRC mismatch")
	}
	return Record{
		Type:    body[0],
		Seq:     binary.LittleEndian.Uint64(body[1:9]),
		Payload: body[frameBodyOverhead:],
	}, frameHeaderSize + int(n), nil
}

// appendFrame encodes one record into dst.
func appendFrame(dst []byte, typ byte, seq uint64, payload []byte) []byte {
	off := len(dst)
	n := frameBodyOverhead + len(payload)
	dst = append(dst, make([]byte, frameHeaderSize)...)
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(dst[off:], uint32(n))
	binary.LittleEndian.PutUint32(dst[off+4:], crc32.Checksum(dst[off+frameHeaderSize:], castagnoli))
	return dst
}

// Enqueue assigns sequence numbers to the records, stages their frames for
// the group-commit writer, and returns immediately. The returned wait
// function blocks until the whole batch has reached the log's durability
// point (or the writer failed) and must be called without holding locks the
// writer could need. Enqueue itself is cheap enough to call under a caller
// lock, which is how the serving registry keeps its buffer order identical
// to the log order.
func (l *Log) Enqueue(recs []Record) (first, last uint64, wait func() error) {
	fail := func(err error) (uint64, uint64, func() error) {
		return 0, 0, func() error { return err }
	}
	if len(recs) == 0 {
		return 0, 0, func() error { return nil }
	}
	for _, rec := range recs {
		if len(rec.Payload) > MaxPayload {
			return fail(fmt.Errorf("wal: record payload of %d bytes exceeds the %d-byte bound", len(rec.Payload), MaxPayload))
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fail(fmt.Errorf("wal: log is closed"))
	}
	if l.werr != nil {
		err := l.werr
		l.mu.Unlock()
		return fail(err)
	}
	first = l.nextSeq
	if len(l.buf) == 0 {
		l.bufFirst = first
	}
	for _, rec := range recs {
		l.buf = appendFrame(l.buf, rec.Type, l.nextSeq, rec.Payload)
		l.nextSeq++
	}
	last = l.nextSeq - 1
	l.bufLast = last
	l.appended += uint64(len(recs))
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, waiter{seq: last, ch: ch})
	l.mu.Unlock()
	// The wait function drives the flush itself instead of sleeping on the
	// background goroutine (leader-based group commit): the first waiter
	// through flushMu writes the whole staged batch — its own records and
	// every concurrent appender's — with one write, and the others find
	// their acknowledgment already delivered. No cross-goroutine wakeup sits
	// on the hot path; the background goroutine only matters for periodic
	// fsyncs and for records appended without waiting.
	wait = func() error {
		select {
		case err := <-ch:
			return err
		default:
		}
		l.flush(false)
		select {
		case err := <-ch:
			return err
		default:
			// A concurrent leader took the batch containing our records
			// before our flush ran; it acknowledges us when it finishes.
			return <-ch
		}
	}
	return first, last, wait
}

// Append is Enqueue followed by the durability wait: it returns the batch's
// last sequence number once every record is durable under the log's policy.
func (l *Log) Append(recs ...Record) (uint64, error) {
	_, last, wait := l.Enqueue(recs)
	return last, wait()
}

// run is the background side of the group commit: on a fixed cadence it
// drains batches whose appenders did not wait (audit events) and — under
// SyncInterval — fires the periodic fsync; on shutdown it performs the
// final flush. Waiting appenders never depend on it: they drive their own
// flush, so no signal (and no cross-goroutine wakeup) sits on the append
// hot path.
func (l *Log) run() {
	defer l.wg.Done()
	interval := l.opts.SyncInterval
	if l.opts.Sync != SyncInterval {
		interval = DefaultSyncInterval // drain-only cadence; flush decides about fsync
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			l.flush(true)
			return
		case <-t.C:
			l.flush(false)
			if l.opts.Sync == SyncInterval {
				// The periodic fsync runs outside flushMu: an fsync can cost
				// tens of milliseconds, and holding the flush lock across it
				// would stall every concurrent append behind the ticker.
				l.periodicSync()
			}
		}
	}
}

// periodicSync fsyncs the active segment up to the current written
// watermark without blocking appenders. Concurrent Sync and Close on an
// os.File are safe (the fd is reference-counted); if a rotation swaps the
// file mid-sync, the rotation itself fsynced the outgoing segment, so a
// failed sync here is not a durability hole — genuine IO errors resurface
// on the write path.
func (l *Log) periodicSync() {
	l.mu.Lock()
	f, target := l.f, l.written
	needed := !l.closed && l.synced < target
	l.mu.Unlock()
	if !needed {
		return
	}
	start := time.Now()
	err := f.Sync()
	l.opts.FsyncHist.Observe(time.Since(start))
	if err != nil {
		return
	}
	l.mu.Lock()
	if l.synced < target {
		l.synced = target
	}
	l.fsyncs++
	l.mu.Unlock()
}

// flush writes the staged batch (if any), fsyncs per policy (syncDue forces
// the periodic fsync of SyncInterval), and releases the waiters that
// reached the durability point. Any goroutine may call it; flushMu makes
// one of them the leader and the file operations single-threaded.
func (l *Log) flush(syncDue bool) {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	buf, first, last := l.buf, l.bufFirst, l.bufLast
	// Swap in the spare staging buffer (double buffering): concurrent
	// Enqueues keep staging while this batch is on its way to the disk, and
	// neither side pays an allocation per flush.
	if l.spare != nil {
		l.buf = l.spare[:0]
		l.spare = nil
	} else {
		l.buf = nil
	}
	werr := l.werr
	// After Close has drained and synced, there is nothing left to do and
	// touching l.f would race the file close.
	closedIdle := l.closed && len(buf) == 0 &&
		(l.opts.Sync == SyncNever || l.synced >= l.written)
	l.mu.Unlock()

	if werr != nil {
		l.failWaiters(werr)
		return
	}
	if closedIdle {
		return
	}
	wrote := false
	var err error
	if len(buf) > 0 {
		err = l.maybeRotate(first)
		if err == nil {
			start := time.Now()
			_, err = l.f.Write(buf)
			l.opts.AppendHist.Observe(time.Since(start))
		}
		if err == nil {
			wrote = true
			l.mu.Lock()
			l.flushes++
			l.written = last
			l.active.size += int64(len(buf))
			if l.active.records == 0 {
				l.active.first = first
			}
			l.active.last = last
			l.active.records += int(last - first + 1)
			if l.spare == nil || cap(buf) > cap(l.spare) {
				l.spare = buf[:0] // recycle the written batch's storage
			}
			l.mu.Unlock()
		}
	}
	synced := false
	if err == nil {
		switch {
		case l.opts.Sync == SyncAlways && wrote,
			l.opts.Sync == SyncInterval && syncDue && l.unsynced():
			start := time.Now()
			err = l.f.Sync()
			l.opts.FsyncHist.Observe(time.Since(start))
			synced = err == nil
		}
	}

	l.mu.Lock()
	if err != nil {
		l.werr = fmt.Errorf("wal: write: %w", err)
	}
	if synced {
		l.fsyncs++
		l.synced = l.written
	}
	ack := l.written
	if l.opts.Sync == SyncAlways {
		ack = l.synced
	}
	var release []waiter
	if l.werr != nil {
		release, l.waiters = l.waiters, nil
		err = l.werr
	} else {
		n := 0
		for _, w := range l.waiters {
			if w.seq <= ack {
				release = append(release, w)
			} else {
				l.waiters[n] = w
				n++
			}
		}
		l.waiters = l.waiters[:n]
	}
	l.mu.Unlock()
	for _, w := range release {
		w.ch <- err
	}
}

func (l *Log) unsynced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced < l.written
}

func (l *Log) failWaiters(err error) {
	l.mu.Lock()
	release := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, w := range release {
		w.ch <- err
	}
}

// maybeRotate finalizes the active segment once it crosses the size
// threshold and starts a new one named after the first sequence number of
// the batch about to be written. Called only under flushMu.
func (l *Log) maybeRotate(base uint64) error {
	l.mu.Lock()
	needed := l.active.size >= l.opts.SegmentSize && l.active.records > 0
	l.mu.Unlock()
	if !needed {
		return nil
	}
	if l.opts.Sync != SyncNever {
		start := time.Now()
		err := l.f.Sync()
		l.opts.FsyncHist.Observe(time.Since(start))
		if err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(segPath(l.dir, base), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	syncDir(l.dir)
	l.mu.Lock()
	l.segs = append(l.segs, l.active)
	l.active = segment{path: f.Name(), base: base}
	l.f = f
	l.rotations++
	l.mu.Unlock()
	return nil
}

// syncDir best-effort fsyncs a directory so segment creations and removals
// survive power loss; not all platforms support it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Replay streams every retained record with seq >= from, in sequence order.
// It must not run concurrently with Append; callers replay on startup
// before serving traffic. fn's Record payload is only valid during the
// call.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := append(append([]segment(nil), l.segs...), l.active)
	l.mu.Unlock()
	for _, s := range segs {
		if s.records == 0 || s.last < from {
			continue
		}
		if _, err := scanSegment(s.path, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// errCollectDone stops a CollectFrames segment scan once the byte budget is
// spent; it never escapes the method.
var errCollectDone = errors.New("wal: collect done")

// CollectFrames re-frames retained records with from <= seq <= upTo into a
// byte slice in the on-disk wire format, stopping once maxBytes is exceeded
// (the first record is always included, so progress is guaranteed even when
// one record outsizes the budget). It returns the framed bytes and the
// first and last sequence numbers included (0, 0 when none).
//
// It returns ErrCompacted when records at from have already been deleted by
// Compact — the caller is behind the compaction floor and must bootstrap
// from a snapshot. Callers cap upTo at DurableSeq so unacknowledged records
// never ship.
//
// Unlike Replay, CollectFrames is safe concurrently with Append: it reads
// the segment files through its own descriptors and simply stops at the
// first incomplete frame (an append racing the read), returning the intact
// prefix. Each call rescans its starting segment from the beginning, so the
// cost of a tailing reader is one sequential read of the active segment per
// call.
func (l *Log) CollectFrames(from, upTo uint64, maxBytes int) (frames []byte, first, last uint64, err error) {
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	segs := append(append([]segment(nil), l.segs...), l.active)
	tail := l.nextSeq - 1
	l.mu.Unlock()
	if from > upTo || from > tail {
		return nil, 0, 0, nil
	}
	retained := uint64(0)
	for _, s := range segs {
		if s.records > 0 {
			retained = s.first
			break
		}
	}
	if retained == 0 || from < retained {
		// Records at from were assigned (from <= tail) but are no longer on
		// disk: compaction outran this reader.
		return nil, 0, 0, ErrCompacted
	}
	expect := from
	for _, s := range segs {
		if s.records == 0 || s.last < from {
			continue
		}
		_, serr := scanSegment(s.path, from, func(rec Record) error {
			if rec.Seq != expect || rec.Seq > upTo {
				return errCollectDone
			}
			frames = EncodeFrame(frames, rec)
			if first == 0 {
				first = rec.Seq
			}
			last = rec.Seq
			expect++
			if len(frames) >= maxBytes {
				return errCollectDone
			}
			return nil
		})
		if serr != nil {
			if errors.Is(serr, errCollectDone) {
				break
			}
			if errors.Is(serr, os.ErrNotExist) {
				// The segment vanished mid-collect: a concurrent Compact won
				// the race. Anything gathered so far is a valid prefix.
				if first != 0 {
					return frames, first, last, nil
				}
				return nil, 0, 0, ErrCompacted
			}
			return nil, 0, 0, serr
		}
		if last != 0 && (last >= upTo || len(frames) >= maxBytes) {
			break
		}
	}
	return frames, first, last, nil
}

// Compact deletes rotated segments whose records all have seq <= upTo. The
// active segment is never deleted, so the tail position survives even a
// full compaction. It returns the number of segments removed.
func (l *Log) Compact(upTo uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 0 && l.segs[0].records > 0 && l.segs[0].last <= upTo {
		if err := os.Remove(l.segs[0].path); err != nil {
			syncDir(l.dir)
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
		l.compacted++
	}
	if removed > 0 {
		syncDir(l.dir)
	}
	return removed, nil
}

// LastSeq returns the highest assigned sequence number (0 before the first
// append).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// DurableSeq returns the acknowledgment watermark: the highest sequence
// number whose Append wait has (or would have) returned.
func (l *Log) DurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Sync == SyncAlways {
		return l.synced
	}
	return l.written
}

// FirstSeq returns the oldest retained record's sequence number, or 0 when
// the log holds no records.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.segs {
		if s.records > 0 {
			return s.first
		}
	}
	if l.active.records > 0 {
		return l.active.first
	}
	return 0
}

// Stats snapshots the log's counters and watermarks.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Appended:          l.appended,
		Flushes:           l.flushes,
		Fsyncs:            l.fsyncs,
		Rotations:         l.rotations,
		CompactedSegments: l.compacted,
		TruncatedBytes:    l.truncated,
		Segments:          len(l.segs) + 1,
		SizeBytes:         l.active.size + int64(len(l.buf)),
		LastSeq:           l.nextSeq - 1,
		SyncedSeq:         l.synced,
	}
	if l.opts.Sync == SyncAlways {
		st.DurableSeq = l.synced
	} else {
		st.DurableSeq = l.written
	}
	for _, s := range l.segs {
		st.SizeBytes += s.size
		if st.FirstSeq == 0 && s.records > 0 {
			st.FirstSeq = s.first
		}
	}
	if st.FirstSeq == 0 && l.active.records > 0 {
		st.FirstSeq = l.active.first
	}
	return st
}

// Close flushes the staged batch, fsyncs (unless SyncNever), stops the
// writer, and closes the active segment. Appends after Close fail.
func (l *Log) Close() error {
	l.stopO.Do(func() { close(l.done) })
	l.wg.Wait()
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.mu.Unlock()
	if already {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.werr
	}
	// An Enqueue that raced the writer's shutdown flush may have staged
	// records the writer never saw; closed is set, so one more flush drains
	// everything and releases every waiter.
	l.flush(true)
	l.mu.Lock()
	err := l.werr
	l.mu.Unlock()
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
