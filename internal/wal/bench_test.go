// Raw append benchmarks: one batched Enqueue+wait per op, isolating the
// log's own cost (framing, group commit, durability wait) from everything
// the serving registry layers on top.
package wal

import (
	"testing"
)

func benchAppend(b *testing.B, batch int, policy Policy) {
	l, err := Open(b.TempDir(), Options{Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 80)
	recs := make([]Record, batch)
	for i := range recs {
		recs[i] = Record{Type: 1, Payload: payload}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, wait := l.Enqueue(recs)
		if err := wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/record")
}

func BenchmarkAppendBatch512Interval(b *testing.B) { benchAppend(b, 512, SyncInterval) }
func BenchmarkAppendBatch512Never(b *testing.B)    { benchAppend(b, 512, SyncNever) }
func BenchmarkAppendBatch512Always(b *testing.B)   { benchAppend(b, 512, SyncAlways) }
