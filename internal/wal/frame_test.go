package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	var buf []byte
	want := []Record{
		{Type: 1, Seq: 1, Payload: []byte("hello")},
		{Type: 9, Seq: 2, Payload: nil},
		{Type: 3, Seq: 3, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, rec := range want {
		buf = EncodeFrame(buf, rec)
	}
	for i, w := range want {
		rec, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("DecodeFrame #%d: %v", i, err)
		}
		if rec.Type != w.Type || rec.Seq != w.Seq || !bytes.Equal(rec.Payload, w.Payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, rec, w)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", len(buf))
	}
}

func TestDecodeFrameShort(t *testing.T) {
	full := EncodeFrame(nil, Record{Type: 1, Seq: 42, Payload: []byte("payload")})
	// Every proper prefix is a short frame, not a corruption error.
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("DecodeFrame(prefix %d/%d) = %v, want ErrShortFrame", cut, len(full), err)
		}
	}
}

func TestDecodeFrameCorrupt(t *testing.T) {
	full := EncodeFrame(nil, Record{Type: 1, Seq: 42, Payload: []byte("payload")})

	// A flipped payload byte must fail the CRC, not decode silently.
	crcBad := append([]byte(nil), full...)
	crcBad[len(crcBad)-1] ^= 0x01
	if _, _, err := DecodeFrame(crcBad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("DecodeFrame(corrupt payload) = %v, want CRC error", err)
	}

	// An absurd declared length is rejected before any read past the header.
	lenBad := append([]byte(nil), full...)
	lenBad[0], lenBad[1], lenBad[2], lenBad[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeFrame(lenBad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("DecodeFrame(bad length) = %v, want invalid-length error", err)
	}
}

func decodeAll(t *testing.T, frames []byte) []Record {
	t.Helper()
	var out []Record
	for len(frames) > 0 {
		rec, n, err := DecodeFrame(frames)
		if err != nil {
			t.Fatalf("DecodeFrame: %v (after %d records)", err, len(out))
		}
		out = append(out, Record{Type: rec.Type, Seq: rec.Seq, Payload: append([]byte(nil), rec.Payload...)})
		frames = frames[n:]
	}
	return out
}

func TestCollectFramesRange(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 128, Sync: SyncAlways})
	defer l.Close()
	for i := 0; i < 20; i++ {
		if _, err := l.Append(Record{Type: 2, Payload: []byte(fmt.Sprintf("rec-%02d", i))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	frames, first, last, err := l.CollectFrames(5, 12, 1<<20)
	if err != nil {
		t.Fatalf("CollectFrames: %v", err)
	}
	if first != 5 || last != 12 {
		t.Fatalf("CollectFrames range = [%d,%d], want [5,12]", first, last)
	}
	recs := decodeAll(t, frames)
	if len(recs) != 8 {
		t.Fatalf("collected %d records, want 8", len(recs))
	}
	for i, rec := range recs {
		wantSeq := uint64(5 + i)
		if rec.Seq != wantSeq || string(rec.Payload) != fmt.Sprintf("rec-%02d", wantSeq-1) {
			t.Fatalf("record %d = %+v, want seq %d", i, rec, wantSeq)
		}
	}

	// from past the tail: empty result, no error (the long-poll idle case).
	if frames, first, last, err = l.CollectFrames(21, 100, 1<<20); err != nil || frames != nil || first != 0 || last != 0 {
		t.Fatalf("CollectFrames(past tail) = %d bytes [%d,%d], %v; want empty", len(frames), first, last, err)
	}
	// from > upTo: empty result too.
	if frames, _, _, err = l.CollectFrames(10, 5, 1<<20); err != nil || frames != nil {
		t.Fatalf("CollectFrames(from>upTo) = %d bytes, %v; want empty", len(frames), err)
	}
}

func TestCollectFramesMaxBytes(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(Record{Type: 1, Payload: payload}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	// A cap smaller than one frame still yields exactly one record —
	// otherwise a follower with a small batch size could never progress.
	frames, first, last, err := l.CollectFrames(1, 10, 1)
	if err != nil {
		t.Fatalf("CollectFrames: %v", err)
	}
	if first != 1 || last != 1 {
		t.Fatalf("CollectFrames(maxBytes=1) range = [%d,%d], want [1,1]", first, last)
	}
	if got := decodeAll(t, frames); len(got) != 1 {
		t.Fatalf("collected %d records, want 1", len(got))
	}

	// A cap fitting ~3 frames stops early; the result is a dense prefix.
	frameSize := frameHeaderSize + frameBodyOverhead + len(payload)
	frames, first, last, err = l.CollectFrames(1, 10, 3*frameSize)
	if err != nil {
		t.Fatalf("CollectFrames: %v", err)
	}
	recs := decodeAll(t, frames)
	if first != 1 || int(last) != len(recs) || len(recs) >= 10 || len(recs) < 3 {
		t.Fatalf("CollectFrames(3 frames) = %d records [%d,%d]", len(recs), first, last)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want dense from 1", i, rec.Seq)
		}
	}
}

func TestCollectFramesCompacted(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64, Sync: SyncAlways})
	defer l.Close()
	payload := bytes.Repeat([]byte("y"), 40)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(Record{Type: 1, Payload: payload}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if removed, err := l.Compact(8); err != nil || removed == 0 {
		t.Fatalf("Compact = %d, %v; want segments removed", removed, err)
	}
	retained := l.FirstSeq()
	if retained <= 1 {
		t.Fatalf("FirstSeq after compaction = %d, want > 1", retained)
	}

	// A reader behind the compaction floor gets ErrCompacted, never a
	// silent gap.
	if _, _, _, err := l.CollectFrames(1, 12, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("CollectFrames(compacted prefix) = %v, want ErrCompacted", err)
	}
	// A reader at the retained boundary still succeeds.
	frames, first, last, err := l.CollectFrames(retained, 12, 1<<20)
	if err != nil {
		t.Fatalf("CollectFrames(retained): %v", err)
	}
	if first != retained || last != 12 {
		t.Fatalf("CollectFrames(retained) range = [%d,%d], want [%d,12]", first, last, retained)
	}
	if got := decodeAll(t, frames); uint64(len(got)) != 12-retained+1 {
		t.Fatalf("collected %d records, want %d", len(got), 12-retained+1)
	}
}

func TestInitialSeq(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncAlways, InitialSeq: 101})
	if seq, err := l.Append(Record{Type: 1, Payload: []byte("first")}); err != nil || seq != 101 {
		t.Fatalf("Append with InitialSeq = %d, %v; want 101", seq, err)
	}
	if seq, err := l.Append(Record{Type: 1, Payload: []byte("second")}); err != nil || seq != 102 {
		t.Fatalf("second Append = %d, %v; want 102", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen without InitialSeq: the on-disk run wins.
	l = openT(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	if l.LastSeq() != 102 || l.FirstSeq() != 101 {
		t.Fatalf("reopened run = [%d,%d], want [101,102]", l.FirstSeq(), l.LastSeq())
	}
	if seq, err := l.Append(Record{Type: 1, Payload: []byte("third")}); err != nil || seq != 103 {
		t.Fatalf("Append after reopen = %d, %v; want 103", seq, err)
	}
	recs := collect(t, l, 101)
	if len(recs) != 3 || recs[0].Seq != 101 {
		t.Fatalf("Replay(101) = %+v", recs)
	}
}
