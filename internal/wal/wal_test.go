package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(from, func(r Record) error {
		out = append(out, Record{Type: r.Type, Seq: r.Seq, Payload: append([]byte(nil), r.Payload...)})
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		seq, err := l.Append(Record{Type: 7, Payload: []byte(fmt.Sprintf("rec-%d", i))})
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append seq = %d, want %d", seq, i+1)
		}
	}
	recs := collect(t, l, 1)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Type != 7 || string(r.Payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if got := collect(t, l, 8); len(got) != 3 || got[0].Seq != 8 {
		t.Fatalf("Replay(8) = %+v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen resumes the sequence run.
	l = openT(t, dir, Options{})
	defer l.Close()
	if l.LastSeq() != 10 {
		t.Fatalf("reopened LastSeq = %d, want 10", l.LastSeq())
	}
	if seq, err := l.Append(Record{Type: 1, Payload: []byte("after")}); err != nil || seq != 11 {
		t.Fatalf("Append after reopen = %d, %v", seq, err)
	}
	if got := collect(t, l, 1); len(got) != 11 {
		t.Fatalf("replayed %d records after reopen, want 11", len(got))
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64, Sync: SyncAlways})
	payload := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(Record{Type: 1, Payload: payload}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations, got %+v", st)
	}
	if got := collect(t, l, 1); len(got) != 12 {
		t.Fatalf("replayed %d records across segments, want 12", len(got))
	}

	removed, err := l.Compact(6)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if removed == 0 {
		t.Fatal("Compact removed nothing")
	}
	got := collect(t, l, 1)
	if len(got) == 0 || got[len(got)-1].Seq != 12 {
		t.Fatalf("post-compaction tail = %+v", got)
	}
	if first := got[0].Seq; first > 7 {
		t.Fatalf("compaction dropped uncovered seq: first retained = %d", first)
	}
	// The retained prefix is contiguous.
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("replay gap at %d: %+v", i, got[i])
		}
	}
	l.Close()

	// Reopen after compaction: tail preserved, appends continue at 13.
	l = openT(t, dir, Options{})
	defer l.Close()
	if seq, err := l.Append(Record{Type: 1, Payload: []byte("y")}); err != nil || seq != 13 {
		t.Fatalf("Append after compacted reopen = %d, %v", seq, err)
	}
}

func TestCompactEverythingKeepsTailPosition(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 32, Sync: SyncAlways})
	for i := 0; i < 8; i++ {
		if _, err := l.Append(Record{Type: 1, Payload: bytes.Repeat([]byte("z"), 30)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Compact(8); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l = openT(t, dir, Options{})
	defer l.Close()
	if seq, err := l.Append(Record{Type: 1, Payload: []byte("a")}); err != nil || seq != 9 {
		t.Fatalf("seq after full compaction = %d, %v (sequence run must survive)", seq, err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(Record{Type: 2, Payload: []byte(fmt.Sprintf("good-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-append: garbage tail bytes.
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l = openT(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	if st := l.Stats(); st.TruncatedBytes != 3 {
		t.Fatalf("TruncatedBytes = %d, want 3", st.TruncatedBytes)
	}
	if got := collect(t, l, 1); len(got) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(got))
	}
	if seq, err := l.Append(Record{Type: 2, Payload: []byte("good-5")}); err != nil || seq != 6 {
		t.Fatalf("Append after truncation = %d, %v", seq, err)
	}
}

func TestCorruptMiddleFrameTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(Record{Type: 2, Payload: []byte("payload")}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip one payload byte in the middle of the segment: everything from
	// that frame on is unusable and truncated away.
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := (len(data) / 5)
	data[frame+frameHeaderSize+frameBodyOverhead] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	if got := collect(t, l, 1); len(got) != 1 {
		t.Fatalf("replayed %d records after mid-file corruption, want 1", len(got))
	}
}

func TestCorruptRotatedSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 48, Sync: SyncAlways})
	for i := 0; i < 8; i++ {
		if _, err := l.Append(Record{Type: 1, Payload: bytes.Repeat([]byte("q"), 40)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs at least two segments")
	}
	l.Close()

	// Corrupt the OLDEST segment (immutable, rotation-closed): Open must
	// refuse rather than silently drop the records behind the bad frame.
	data, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+frameBodyOverhead] ^= 0xff
	if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt rotated segment")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncAlways, SegmentSize: 4096})
	defer l.Close()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(Record{Type: byte(w), Payload: []byte(fmt.Sprintf("w%d-%d", w, i))}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appended != workers*per {
		t.Fatalf("Appended = %d, want %d", st.Appended, workers*per)
	}
	if st.Flushes >= st.Appended {
		t.Logf("no coalescing observed (flushes=%d appended=%d); legal but unexpected", st.Flushes, st.Appended)
	}
	recs := collect(t, l, 1)
	if len(recs) != workers*per {
		t.Fatalf("replayed %d, want %d", len(recs), workers*per)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("seq gap at %d: %d", i, r.Seq)
		}
	}
}

func TestEnqueueAckMeansOnDisk(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncInterval})
	_, last, wait := l.Enqueue([]Record{{Type: 3, Payload: []byte("a")}, {Type: 3, Payload: []byte("b")}})
	if err := wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if last != 2 {
		t.Fatalf("last = %d, want 2", last)
	}
	if l.DurableSeq() < 2 {
		t.Fatalf("DurableSeq = %d after ack, want >= 2", l.DurableSeq())
	}
	// The bytes are on disk (page cache): a different reader sees them.
	var names []string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		names = append(names, e.Name())
	}
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil || len(data) == 0 {
		t.Fatalf("segment unreadable after ack: %v (%d bytes)", err, len(data))
	}
	l.Close()
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	l.Close()
	if _, err := l.Append(Record{Type: 1, Payload: []byte("x")}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"", "always", "interval", "never"} {
		if _, err := ParsePolicy(ok); err != nil {
			t.Errorf("ParsePolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	defer l.Close()
	if _, err := l.Append(Record{Type: 1, Payload: make([]byte, MaxPayload+1)}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}
