package wal

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameRoundTrip throws arbitrary bytes at DecodeFrame. Any input that
// decodes must re-encode to exactly the consumed prefix — the frame format
// is canonical, so decode∘encode is the identity on valid frames — and
// inputs that don't decode must fail cleanly (no panic, nothing consumed).
// This is the torn-tail contract replication and replay lean on: a reader
// walking a byte stream trusts DecodeFrame to tell frame from garbage.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(nil, Record{Type: 1, Seq: 1, Payload: []byte("observe")}))
	f.Add(EncodeFrame(nil, Record{Type: 0, Seq: 0, Payload: nil}))
	f.Add(EncodeFrame(nil, Record{Type: 0xff, Seq: math.MaxUint64, Payload: bytes.Repeat([]byte{0xab}, 100)}))
	// Two back-to-back frames: decoding must consume exactly the first.
	two := EncodeFrame(nil, Record{Type: 2, Seq: 7, Payload: []byte("a")})
	f.Add(EncodeFrame(two, Record{Type: 3, Seq: 8, Payload: []byte("b")}))
	// A frame with a flipped CRC byte and a truncated frame.
	bad := EncodeFrame(nil, Record{Type: 1, Seq: 9, Payload: []byte("corrupt")})
	bad[5] ^= 0x01
	f.Add(bad)
	f.Add(EncodeFrame(nil, Record{Type: 1, Seq: 10, Payload: []byte("torn tail")})[:12])

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n < frameHeaderSize+frameBodyOverhead || n > len(data) {
			t.Fatalf("decode consumed %d bytes of %d", n, len(data))
		}
		re := EncodeFrame(nil, rec)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode is not the consumed prefix:\n got %x\nwant %x", re, data[:n])
		}
		rec2, n2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if n2 != len(re) || rec2.Type != rec.Type || rec2.Seq != rec.Seq || !bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", rec2, rec)
		}
	})
}

// FuzzEncodeFrame drives the codec from the record side: every encodable
// record must decode back field-identical, consuming the whole frame, and a
// trailing-garbage suffix must not change what is decoded.
func FuzzEncodeFrame(f *testing.F) {
	f.Add(byte(0), uint64(0), []byte{})
	f.Add(byte(1), uint64(1), []byte("observation payload"))
	f.Add(byte(0xff), uint64(math.MaxUint64), bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, typ byte, seq uint64, payload []byte) {
		if len(payload) > MaxPayload {
			t.Skip("payload above the append bound")
		}
		frame := EncodeFrame(nil, Record{Type: typ, Seq: seq, Payload: payload})
		rec, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("decode of encoded frame: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
		}
		if rec.Type != typ || rec.Seq != seq || !bytes.Equal(rec.Payload, payload) {
			t.Fatalf("round trip mismatch: got (%d, %d, %x), want (%d, %d, %x)",
				rec.Type, rec.Seq, rec.Payload, typ, seq, payload)
		}
		// A dense stream: the same frame with bytes after it decodes
		// identically and leaves the suffix untouched.
		rec2, n2, err := DecodeFrame(append(frame, 0xde, 0xad))
		if err != nil || n2 != len(frame) || rec2.Type != typ || rec2.Seq != seq || !bytes.Equal(rec2.Payload, payload) {
			t.Fatalf("decode with suffix diverged: n=%d err=%v", n2, err)
		}
	})
}
