package maxent

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveTwoBuckets(t *testing.T) {
	// Two buckets of volume 0.5 each; default query says total mass 1, one
	// observation says bucket 0 holds 0.3.
	p := &Problem{
		Volumes: []float64{0.5, 0.5},
		Members: [][]int{{0, 1}, {0}},
		Sels:    []float64{1, 0.3},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: viol=%g after %d iters", res.MaxViol, res.Iters)
	}
	if math.Abs(res.Weights[0]-0.3) > 1e-5 || math.Abs(res.Weights[1]-0.7) > 1e-5 {
		t.Errorf("weights = %v, want [0.3 0.7]", res.Weights)
	}
}

func TestSolveMaxEntropyPrefersUniformPerVolume(t *testing.T) {
	// Only the default query: frequencies should be proportional to volume
	// (the max-entropy distribution with no other information is uniform).
	p := &Problem{
		Volumes: []float64{0.25, 0.75},
		Members: [][]int{{0, 1}},
		Sels:    []float64{1},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Weights[0]-0.25) > 1e-5 || math.Abs(res.Weights[1]-0.75) > 1e-5 {
		t.Errorf("weights = %v, want [0.25 0.75]", res.Weights)
	}
}

func TestSolveOverlappingConstraints(t *testing.T) {
	// Three buckets; two overlapping queries share bucket 1.
	p := &Problem{
		Volumes: []float64{0.3, 0.4, 0.3},
		Members: [][]int{
			{0, 1, 2}, // default
			{0, 1},    // s = 0.6
			{1, 2},    // s = 0.7
		},
		Sels: []float64{1, 0.6, 0.7},
	}
	res, err := Solve(p, Options{MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: viol=%g", res.MaxViol)
	}
	// Constraints must hold: w0+w1=0.6, w1+w2=0.7, total=1 → w1=0.3.
	if math.Abs(res.Weights[1]-0.3) > 1e-4 {
		t.Errorf("w1 = %g, want 0.3", res.Weights[1])
	}
}

func TestSolveZeroSelectivity(t *testing.T) {
	p := &Problem{
		Volumes: []float64{0.5, 0.5},
		Members: [][]int{{0, 1}, {0}},
		Sels:    []float64{1, 0},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] > 1e-6 {
		t.Errorf("w0 = %g, want ≈0", res.Weights[0])
	}
	if math.Abs(res.Weights[1]-1) > 1e-5 {
		t.Errorf("w1 = %g, want ≈1", res.Weights[1])
	}
}

func TestSolveValidation(t *testing.T) {
	cases := []struct {
		name string
		p    *Problem
	}{
		{"mismatched sels", &Problem{Volumes: []float64{1}, Members: [][]int{{0}}, Sels: nil}},
		{"zero volume", &Problem{Volumes: []float64{0}, Members: [][]int{{0}}, Sels: []float64{1}}},
		{"negative volume", &Problem{Volumes: []float64{-1}, Members: [][]int{{0}}, Sels: []float64{1}}},
		{"bucket out of range", &Problem{Volumes: []float64{1}, Members: [][]int{{3}}, Sels: []float64{1}}},
		{"selectivity out of range", &Problem{Volumes: []float64{1}, Members: [][]int{{0}}, Sels: []float64{2}}},
		{"nan selectivity", &Problem{Volumes: []float64{1}, Members: [][]int{{0}}, Sels: []float64{math.NaN()}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(tc.p, Options{}); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSolveEmptyProblem(t *testing.T) {
	res, err := Solve(&Problem{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weights) != 0 {
		t.Errorf("weights = %v, want empty", res.Weights)
	}
}

func TestContradictoryConstraintsDoNotDiverge(t *testing.T) {
	// Same bucket set asserted at two different selectivities: no solution
	// exists; the solver must stop at MaxIters without NaN/Inf weights.
	p := &Problem{
		Volumes: []float64{0.5, 0.5},
		Members: [][]int{{0, 1}, {0}, {0}},
		Sels:    []float64{1, 0.2, 0.8},
	}
	res, err := Solve(p, Options{MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			t.Fatalf("weight %g invalid under contradictory constraints", w)
		}
	}
}

// Property: on random consistent instances (selectivities generated from a
// hidden ground-truth distribution) the solver reproduces every constraint.
// The instances are drawn from a fixed seed range rather than testing/quick's
// random seeds: the property must hold for every seed, so a deterministic
// sweep tests it just as well — and a CI failure reproduces locally instead
// of flaking on whichever seed quick happened to draw that run.
func TestPropertyConsistentInstancesConverge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(8)
		// Hidden ground truth over m buckets.
		truth := make([]float64, m)
		var tot float64
		for j := range truth {
			truth[j] = rng.Float64()
			tot += truth[j]
		}
		for j := range truth {
			truth[j] /= tot
		}
		vols := make([]float64, m)
		for j := range vols {
			vols[j] = 0.1 + rng.Float64()
		}
		// Default query + a few random subset queries with exact sels.
		members := [][]int{allIdx(m)}
		sels := []float64{1}
		for q := 0; q < 1+rng.Intn(4); q++ {
			var mem []int
			var s float64
			for j := 0; j < m; j++ {
				if rng.Float64() < 0.5 {
					mem = append(mem, j)
					s += truth[j]
				}
			}
			if len(mem) == 0 {
				continue
			}
			members = append(members, mem)
			sels = append(sels, s)
		}
		res, err := Solve(&Problem{Volumes: vols, Members: members, Sels: sels},
			Options{MaxIters: 20000, Tol: 1e-7})
		if err != nil {
			return false
		}
		// Iterative scaling converges sublinearly on some consistent
		// instances: a rare seed lands at ~1e-6 violation after the
		// iteration budget without being wrong. Accept near-convergence so
		// the property (the solver reproduces every constraint) is tested
		// without flaking on convergence *speed*.
		return res.Converged || res.MaxViol <= 1e-5
	}
	for seed := int64(0); seed < 50; seed++ {
		if !f(seed) {
			t.Errorf("solver failed to converge on consistent instance seed=%d", seed)
		}
	}
}

func allIdx(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, n := 500, 50
	vols := make([]float64, m)
	for j := range vols {
		vols[j] = 0.01 + rng.Float64()
	}
	members := [][]int{allIdx(m)}
	sels := []float64{1}
	for q := 0; q < n; q++ {
		var mem []int
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.3 {
				mem = append(mem, j)
			}
		}
		members = append(members, mem)
		sels = append(sels, rng.Float64())
	}
	p := &Problem{Volumes: vols, Members: members, Sels: sels}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Options{MaxIters: 100}); err != nil {
			b.Fatal(err)
		}
	}
}
