// Package maxent implements the iterative-scaling optimizer used by
// max-entropy query-driven histograms (ISOMER and its relatives). Given a
// set of histogram buckets and observed queries such that every bucket is
// either fully inside or fully outside each query's region (the 0/1 overlap
// requirement analysed in Appendix B of the QuickSel paper), it finds the
// maximum-entropy bucket frequencies consistent with the observed
// selectivities.
//
// The update rule is the multiplicative form derived in Appendix B:
//
//	w_j = (v_j / e) · Π_{i : j ∈ C_i} z_i
//	z_i ← s_i / Σ_{j ∈ C_i} (w_j / z_i)
//
// where v_j is bucket j's volume, C_i is the set of buckets inside query i,
// and z_i = exp(λ_i) are the exponentiated Lagrange multipliers.
//
// Trade-off: maximum-entropy frequencies are the least-assuming model
// consistent with the observations, but the solver is iterative — hundreds
// of passes over every (query, bucket) incidence — so training cost scales
// with both partition size and history length, unlike QuickSel's one-shot
// closed-form solve. The faithful update (Options.Incremental=false)
// re-evaluates the Appendix-B product per bucket and is kept for the
// published-algorithm baseline; the incremental form is mathematically
// identical and asymptotically much faster, and is what quickseld's
// "maxent" method uses (internal/estimator).
package maxent

import (
	"errors"
	"fmt"
	"math"
)

// Problem is one iterative-scaling instance.
type Problem struct {
	// Volumes of the m buckets (all must be positive).
	Volumes []float64
	// Members[i] lists the bucket indices fully contained in query i's
	// region. The caller must include the default query covering all
	// buckets (selectivity 1) if normalization is desired.
	Members [][]int
	// Sels[i] is the observed selectivity of query i.
	Sels []float64
}

// Options tunes Solve.
type Options struct {
	MaxIters int     // 0 means 1000
	Tol      float64 // max constraint violation; 0 means 1e-6
	// Incremental enables an optimization over the published algorithm:
	// instead of re-evaluating the product Π_{k∈D_j\i} z_k for every bucket
	// on every update (Equation 8 of Appendix B, the faithful default), the
	// solver maintains w_j = (v_j/e)·Π z_k incrementally and updates it by
	// the ratio z_new/z_old. Mathematically identical, asymptotically much
	// faster; kept as an option so the baseline comparison of the
	// reproduction uses the algorithm as published (see the iterative-
	// scaling ablation in internal/experiments).
	Incremental bool
}

// Result reports the solved frequencies and convergence diagnostics.
type Result struct {
	Weights   []float64 // bucket frequencies w_j (sum to the default query's selectivity)
	Iters     int
	Converged bool
	MaxViol   float64 // largest |Σ_{j∈C_i} w_j − s_i| at exit
}

// ErrBadProblem is returned for structurally invalid instances.
var ErrBadProblem = errors.New("maxent: invalid problem")

// Solve runs iterative scaling until every constraint holds within Tol or
// MaxIters is reached.
func Solve(p *Problem, opts Options) (*Result, error) {
	m := len(p.Volumes)
	n := len(p.Members)
	if len(p.Sels) != n {
		return nil, fmt.Errorf("%w: %d member sets vs %d selectivities", ErrBadProblem, n, len(p.Sels))
	}
	for j, v := range p.Volumes {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: bucket %d has volume %g", ErrBadProblem, j, v)
		}
	}
	for i, mem := range p.Members {
		for _, j := range mem {
			if j < 0 || j >= m {
				return nil, fmt.Errorf("%w: query %d references bucket %d of %d", ErrBadProblem, i, j, m)
			}
		}
		if p.Sels[i] < 0 || p.Sels[i] > 1+1e-9 || math.IsNaN(p.Sels[i]) {
			return nil, fmt.Errorf("%w: query %d has selectivity %g", ErrBadProblem, i, p.Sels[i])
		}
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 1000
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-6
	}

	// Initialize z_i = 1 and w_j = v_j / e.
	z := make([]float64, n)
	for i := range z {
		z[i] = 1
	}
	w := make([]float64, m)
	for j := range w {
		w[j] = p.Volumes[j] / math.E
	}

	// incident[j] lists the queries containing bucket j (the sets D_j of
	// Appendix B), needed by the faithful direct update.
	var incident [][]int32
	if !opts.Incremental {
		incident = make([][]int32, m)
		for i, mem := range p.Members {
			for _, j := range mem {
				incident[j] = append(incident[j], int32(i))
			}
		}
	}

	// zFloor keeps zero-selectivity constraints representable; zCeil stops a
	// diverging solve (inconsistent feedback makes the fixed point
	// infeasible) from pushing iterates to +Inf, whose products then mix
	// with underflow and turn every weight into NaN. The clamps only engage
	// on non-finite or astronomically large values, so a converging problem
	// computes bit-identical results with or without them.
	const (
		zFloor = 1e-300
		zCeil  = 1e300
	)
	res := &Result{}
	for iter := 0; iter < opts.MaxIters; iter++ {
		for i := 0; i < n; i++ {
			var zNew float64
			if opts.Incremental {
				// Optimized: Σ_{j∈C_i} (v_j/e)·Π_{k∈D_j\i} z_k = (Σ w_j)/z_i.
				var sum float64
				for _, j := range p.Members[i] {
					sum += w[j]
				}
				if sum <= 0 {
					continue
				}
				zNew = p.Sels[i] * z[i] / sum
			} else {
				// Faithful Equation (8): re-evaluate the denominator product
				// for every member bucket.
				var denom float64
				for _, j := range p.Members[i] {
					term := p.Volumes[j] / math.E
					for _, k := range incident[j] {
						if int(k) != i {
							term *= z[k]
						}
					}
					denom += term
				}
				if denom <= 0 {
					continue
				}
				zNew = p.Sels[i] / denom
			}
			if math.IsNaN(zNew) {
				zNew = z[i] // poisoned update: keep the previous iterate
			}
			if zNew < zFloor {
				zNew = zFloor
			}
			if zNew > zCeil {
				zNew = zCeil
			}
			if opts.Incremental {
				ratio := zNew / z[i]
				if ratio != 1 {
					for _, j := range p.Members[i] {
						w[j] = clampWeight(w[j] * ratio)
					}
				}
			}
			z[i] = zNew
		}
		if !opts.Incremental {
			// Recompute w_j = (v_j/e)·Π_{k∈D_j} z_k from scratch (Equation 6).
			for j := 0; j < m; j++ {
				term := p.Volumes[j] / math.E
				for _, k := range incident[j] {
					term *= z[k]
				}
				w[j] = clampWeight(term)
			}
		}
		res.Iters = iter + 1
		res.MaxViol = maxViolation(p, w)
		if res.MaxViol <= opts.Tol {
			res.Converged = true
			break
		}
	}
	res.Weights = w
	return res, nil
}

// clampWeight pins a non-finite weight iterate back into the finite range:
// a diverged solve must still yield weights that serve (clamped to [0,1] at
// estimate time) and serialize (JSON has no Inf or NaN). Finite weights
// pass through untouched.
func clampWeight(w float64) float64 {
	switch {
	case math.IsNaN(w):
		return 0
	case math.IsInf(w, 1):
		return math.MaxFloat64
	case math.IsInf(w, -1):
		return -math.MaxFloat64
	default:
		return w
	}
}

// maxViolation returns the largest absolute constraint violation.
func maxViolation(p *Problem, w []float64) float64 {
	var worst float64
	for i, mem := range p.Members {
		var sum float64
		for _, j := range mem {
			sum += w[j]
		}
		if d := math.Abs(sum - p.Sels[i]); d > worst {
			worst = d
		}
	}
	return worst
}
