package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"quicksel/internal/wal"
)

// fakePrimary is a scripted /v1/replication/wal endpoint: each round pops
// the next respond function off the script; once the script is exhausted it
// serves the log normally. The log is a dense []wal.Record starting at 1.
type fakePrimary struct {
	mu     sync.Mutex
	log    []wal.Record
	script []func(w http.ResponseWriter, from uint64, p *fakePrimary)
	froms  []uint64 // from parameter of every request, in order
	srv    *httptest.Server
}

func newFakePrimary(t *testing.T, n int) *fakePrimary {
	t.Helper()
	p := &fakePrimary{}
	for i := 1; i <= n; i++ {
		p.log = append(p.log, wal.Record{Type: 1, Seq: uint64(i), Payload: []byte(fmt.Sprintf("rec-%d", i))})
	}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/replication/wal" {
			http.NotFound(w, r)
			return
		}
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		p.mu.Lock()
		p.froms = append(p.froms, from)
		var step func(http.ResponseWriter, uint64, *fakePrimary)
		if len(p.script) > 0 {
			step = p.script[0]
			p.script = p.script[1:]
		}
		p.mu.Unlock()
		if step != nil {
			step(w, from, p)
			return
		}
		p.serveNormal(w, from)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

// frames encodes log records [from, upTo] as wire frames.
func (p *fakePrimary) frames(from, upTo uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf []byte
	for _, rec := range p.log {
		if rec.Seq >= from && rec.Seq <= upTo {
			buf = wal.EncodeFrame(buf, rec)
		}
	}
	return buf
}

func (p *fakePrimary) tail() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.log) == 0 {
		return 0
	}
	return p.log[len(p.log)-1].Seq
}

func (p *fakePrimary) serveNormal(w http.ResponseWriter, from uint64) {
	tail := p.tail()
	buf := p.frames(from, tail)
	first, last := uint64(0), uint64(0)
	if len(buf) > 0 {
		first, last = from, tail
	}
	w.Header().Set(HeaderFirst, strconv.FormatUint(first, 10))
	w.Header().Set(HeaderLast, strconv.FormatUint(last, 10))
	w.Header().Set(HeaderTail, strconv.FormatUint(tail, 10))
	w.Write(buf)
}

// sink collects applied records and tracks the resume watermark the way the
// real registry does: next = last applied seq + 1.
type sink struct {
	mu      sync.Mutex
	recs    []wal.Record
	next    uint64
	applyCh chan struct{} // closed once next reaches target
	target  uint64
}

func newSink(target uint64) *sink {
	return &sink{next: 1, target: target, applyCh: make(chan struct{})}
}

func (s *sink) resume() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

func (s *sink) apply(recs []wal.Record, _ uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		if rec.Seq != s.next {
			return fmt.Errorf("sink: got seq %d, want %d", rec.Seq, s.next)
		}
		s.recs = append(s.recs, wal.Record{Type: rec.Type, Seq: rec.Seq, Payload: append([]byte(nil), rec.Payload...)})
		s.next = rec.Seq + 1
	}
	if s.target > 0 && s.next > s.target {
		select {
		case <-s.applyCh:
		default:
			close(s.applyCh)
		}
	}
	return nil
}

// runFetcher starts f.Run in a goroutine and returns a wait-for-exit func.
func runFetcher(t *testing.T, f *Fetcher) func() error {
	t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- f.Run(context.Background()) }()
	t.Cleanup(f.Stop)
	return func() error {
		select {
		case err := <-errCh:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("fetch loop did not exit")
			return nil
		}
	}
}

func waitApplied(t *testing.T, s *sink) {
	t.Helper()
	select {
	case <-s.applyCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("sink never reached seq %d (at %d)", s.target, s.resume())
	}
}

func TestFetcherTailsCleanPrimary(t *testing.T) {
	p := newFakePrimary(t, 25)
	s := newSink(25)
	f, err := NewFetcher(Config{
		PrimaryURL: p.srv.URL,
		FollowerID: "t1",
		Resume:     s.resume,
		Apply:      s.apply,
		PollWait:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFetcher: %v", err)
	}
	f.sleepFn = func(time.Duration) {}
	runFetcher(t, f)
	waitApplied(t, s)

	if len(s.recs) != 25 {
		t.Fatalf("applied %d records, want 25", len(s.recs))
	}
	for i, rec := range s.recs {
		if rec.Seq != uint64(i+1) || string(rec.Payload) != fmt.Sprintf("rec-%d", i+1) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	st := f.Stats()
	if st.Lag != 0 || !st.CaughtUp || !st.Healthy {
		t.Fatalf("Stats after catch-up = %+v", st)
	}
	if st.TornResponses != 0 || st.FetchErrors != 0 {
		t.Fatalf("clean tail recorded failures: %+v", st)
	}
}

func TestFetcherKeepsTornPrefixAndResumes(t *testing.T) {
	p := newFakePrimary(t, 10)
	s := newSink(10)
	// First round: a torn response — 4 good frames, the 5th cut mid-frame.
	p.script = []func(http.ResponseWriter, uint64, *fakePrimary){
		func(w http.ResponseWriter, from uint64, p *fakePrimary) {
			good := p.frames(from, from+3)
			torn := p.frames(from+4, from+4)
			w.Header().Set(HeaderTail, strconv.FormatUint(p.tail(), 10))
			w.Write(append(good, torn[:len(torn)-3]...))
		},
	}
	f, err := NewFetcher(Config{
		PrimaryURL: p.srv.URL,
		Resume:     s.resume,
		Apply:      s.apply,
		PollWait:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFetcher: %v", err)
	}
	f.sleepFn = func(time.Duration) {}
	runFetcher(t, f)
	waitApplied(t, s)

	if len(s.recs) != 10 {
		t.Fatalf("applied %d records, want 10", len(s.recs))
	}
	if got := f.Stats().TornResponses; got != 1 {
		t.Fatalf("TornResponses = %d, want 1", got)
	}
	// The round after the torn one must resume at the verified prefix's end
	// (seq 5), not refetch from 1 and not skip ahead.
	p.mu.Lock()
	froms := append([]uint64(nil), p.froms...)
	p.mu.Unlock()
	if len(froms) < 2 || froms[0] != 1 || froms[1] != 5 {
		t.Fatalf("request watermarks = %v, want [1 5 ...]", froms)
	}
}

func TestFetcherCRCCorruptionEndsPrefix(t *testing.T) {
	p := newFakePrimary(t, 6)
	s := newSink(6)
	// First round: 2 good frames, then a frame with a flipped payload byte.
	p.script = []func(http.ResponseWriter, uint64, *fakePrimary){
		func(w http.ResponseWriter, from uint64, p *fakePrimary) {
			buf := p.frames(from, from+2)
			buf[len(buf)-1] ^= 0x01
			w.Header().Set(HeaderTail, strconv.FormatUint(p.tail(), 10))
			w.Write(buf)
		},
	}
	f, err := NewFetcher(Config{
		PrimaryURL: p.srv.URL,
		Resume:     s.resume,
		Apply:      s.apply,
		PollWait:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFetcher: %v", err)
	}
	f.sleepFn = func(time.Duration) {}
	runFetcher(t, f)
	waitApplied(t, s)

	if len(s.recs) != 6 {
		t.Fatalf("applied %d records, want 6", len(s.recs))
	}
	// The corrupt byte must never have reached the sink.
	for i, rec := range s.recs {
		if string(rec.Payload) != fmt.Sprintf("rec-%d", i+1) {
			t.Fatalf("record %d payload = %q", i, rec.Payload)
		}
	}
	if got := f.Stats().TornResponses; got != 1 {
		t.Fatalf("TornResponses = %d, want 1", got)
	}
}

func TestFetcherBackoffOn5xxBurst(t *testing.T) {
	p := newFakePrimary(t, 5)
	s := newSink(5)
	fail := func(w http.ResponseWriter, _ uint64, _ *fakePrimary) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}
	p.script = []func(http.ResponseWriter, uint64, *fakePrimary){fail, fail, fail, fail}

	var mu sync.Mutex
	var sleeps []time.Duration
	f, err := NewFetcher(Config{
		PrimaryURL: p.srv.URL,
		Resume:     s.resume,
		Apply:      s.apply,
		PollWait:   50 * time.Millisecond,
		BackoffMin: 100 * time.Millisecond,
		BackoffMax: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFetcher: %v", err)
	}
	f.sleepFn = func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
	}
	f.jitterFn = func() float64 { return 0.5 } // deterministic: jittered(d) = 0.75d
	runFetcher(t, f)
	waitApplied(t, s)

	if got := f.Stats().FetchErrors; got != 4 {
		t.Fatalf("FetchErrors = %d, want 4", got)
	}
	mu.Lock()
	defer mu.Unlock()
	// With jitter pinned at 0.5, the sleeps are 0.75 × the exponential
	// envelope 100ms, 200ms, 300ms (capped), 300ms.
	want := []time.Duration{75 * time.Millisecond, 150 * time.Millisecond, 225 * time.Millisecond, 225 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, sleeps[i], want[i], sleeps)
		}
	}
}

func TestJitteredBounds(t *testing.T) {
	f := &Fetcher{}
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		got := f.jittered(d)
		if got < d/2 || got >= d {
			t.Fatalf("jittered(%v) = %v, want in [%v, %v)", d, got, d/2, d)
		}
	}
	// The pinned extremes hit the bounds exactly.
	f.jitterFn = func() float64 { return 0 }
	if got := f.jittered(d); got != d/2 {
		t.Fatalf("jittered with j=0 = %v, want %v", got, d/2)
	}
}

func TestFetcherGapStopsLoop(t *testing.T) {
	p := newFakePrimary(t, 3)
	s := newSink(0)
	p.script = []func(http.ResponseWriter, uint64, *fakePrimary){
		func(w http.ResponseWriter, _ uint64, _ *fakePrimary) {
			http.Error(w, "compacted", http.StatusGone)
		},
	}
	f, err := NewFetcher(Config{
		PrimaryURL: p.srv.URL,
		Resume:     s.resume,
		Apply:      s.apply,
	})
	if err != nil {
		t.Fatalf("NewFetcher: %v", err)
	}
	wait := runFetcher(t, f)
	if err := wait(); !errors.Is(err, ErrGap) {
		t.Fatalf("Run = %v, want ErrGap", err)
	}
	if got := f.Stats().GapResponses; got != 1 {
		t.Fatalf("GapResponses = %d, want 1", got)
	}
}

func TestStopCancelsStalledFetch(t *testing.T) {
	// A primary that accepts the request and then never responds: Stop must
	// cancel the in-flight request, not wait out the client timeout.
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	s := newSink(0)
	f, err := NewFetcher(Config{
		PrimaryURL: srv.URL,
		Resume:     s.resume,
		Apply:      s.apply,
		Client:     &http.Client{}, // no timeout: only cancellation can end the request
	})
	if err != nil {
		t.Fatalf("NewFetcher: %v", err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- f.Run(context.Background()) }()
	time.Sleep(100 * time.Millisecond) // let the request reach the stalled handler
	done := make(chan struct{})
	go func() { f.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not cancel the stalled fetch")
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Run after Stop = %v, want nil", err)
	}
}

func TestFetcherUnhealthyAfterSilence(t *testing.T) {
	p := newFakePrimary(t, 2)
	s := newSink(2)
	f, err := NewFetcher(Config{
		PrimaryURL:     p.srv.URL,
		Resume:         s.resume,
		Apply:          s.apply,
		PollWait:       50 * time.Millisecond,
		UnhealthyAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFetcher: %v", err)
	}
	f.sleepFn = func(time.Duration) {}
	runFetcher(t, f)
	waitApplied(t, s)
	f.Stop()

	if st := f.Stats(); !st.Healthy {
		t.Fatalf("Stats right after a round = %+v, want healthy", st)
	}
	time.Sleep(100 * time.Millisecond)
	if st := f.Stats(); st.Healthy {
		t.Fatalf("Stats after silence = %+v, want unhealthy", st)
	}
}

func TestFetchSnapshot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/replication/snapshot":
			w.Header().Set(HeaderCovered, "7")
			w.Write([]byte("snapshot-bytes"))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	data, found, err := FetchSnapshot(context.Background(), nil, srv.URL)
	if err != nil || !found || string(data) != "snapshot-bytes" {
		t.Fatalf("FetchSnapshot = %q, %v, %v", data, found, err)
	}

	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer empty.Close()
	if _, found, err := FetchSnapshot(context.Background(), nil, empty.URL); err != nil || found {
		t.Fatalf("FetchSnapshot(204) = %v, %v; want not found", found, err)
	}
}
