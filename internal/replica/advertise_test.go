package replica

import (
	"net/http"
	"testing"
)

// TestFetcherCapturesAdvertisedPrimary: the fetcher records the primary's
// self-advertised address from X-Quickseld-Primary on WAL responses, keeps
// the last value when a response omits the header, and surfaces it on
// Stats.
func TestFetcherCapturesAdvertisedPrimary(t *testing.T) {
	p := newFakePrimary(t, 10)
	p.script = []func(w http.ResponseWriter, from uint64, p *fakePrimary){
		// Round 1: primary advertises itself.
		func(w http.ResponseWriter, from uint64, p *fakePrimary) {
			w.Header().Set(HeaderPrimary, "http://adv.example:7075")
			p.serveNormal(w, from)
		},
	}
	s := newSink(10)
	f, err := NewFetcher(Config{
		PrimaryURL: p.srv.URL,
		FollowerID: "f1",
		Resume:     s.resume,
		Apply:      s.apply,
		PollWait:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.PrimaryURL(); got != "" {
		t.Fatalf("PrimaryURL before any round = %q", got)
	}
	runFetcher(t, f)
	waitApplied(t, s)
	f.Stop()

	if got := f.PrimaryURL(); got != "http://adv.example:7075" {
		t.Fatalf("PrimaryURL = %q, want the advertised address", got)
	}
	// Subsequent header-less responses (the script ran out after round 1)
	// must not have cleared the learned address.
	if got := f.Stats().PrimaryURL; got != "http://adv.example:7075" {
		t.Fatalf("Stats().PrimaryURL = %q", got)
	}
}
