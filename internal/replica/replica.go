// Package replica implements the follower half of quickseld's WAL-shipped
// primary/follower replication: a resumable fetch loop that tails a
// primary's write-ahead log over HTTP and hands the records to a local
// sink (the serving registry, which appends them to its own log and
// applies them, so follower state is bit-identical to the primary's).
//
// # Protocol
//
// The primary serves GET /v1/replication/wal?from=<seq> with a dense run
// of CRC32C frames in the on-disk format (wal.EncodeFrame), capped at its
// durability watermark so unacknowledged records never ship. The request
// long-polls: when the log tail is below from, the primary holds the
// request up to the wait parameter, so a caught-up follower learns about
// new records within one round trip instead of one poll interval. Response
// headers report the shipped range and the primary's durable tail
// (X-Quickseld-Wal-First/-Last/-Tail); the from parameter doubles as the
// follower's acknowledgment — fetching from=N tells the primary everything
// below N is applied, which feeds the primary's semi-sync ack wait and its
// compaction floor.
//
// A 410 (Gone) response means the primary compacted past the follower's
// watermark; the fetch loop stops with ErrGap and the caller re-bootstraps
// from GET /v1/replication/snapshot.
//
// # Fault tolerance
//
// Every response is re-verified frame by frame: a torn or truncated body
// (a proxy cutting the stream, a crashing primary mid-write) yields the
// intact prefix — applied as progress — and the loop refetches the rest.
// A CRC mismatch or sequence discontinuity likewise ends the usable
// prefix. Transport and 5xx errors retry under jittered exponential
// backoff (sleep drawn uniformly from [d/2, d), d doubling from BackoffMin
// to BackoffMax), so a restarting primary is not hammered by its
// followers. The watermark is re-read from the sink every round, so a
// follower resumes exactly where its local log ends, across both round
// failures and process restarts.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quicksel/internal/obs"
	"quicksel/internal/wal"
)

// Replication wire-protocol headers.
const (
	// HeaderFirst and HeaderLast bound the record range in a WAL fetch
	// response body ("0" when the body is empty).
	HeaderFirst = "X-Quickseld-Wal-First"
	HeaderLast  = "X-Quickseld-Wal-Last"
	// HeaderTail reports the primary's durable tail sequence number; the
	// follower's lag is tail minus its applied watermark.
	HeaderTail = "X-Quickseld-Wal-Tail"
	// HeaderPrimary carries the primary's URL on follower 503 responses so
	// redirected clients know where writes go.
	HeaderPrimary = "X-Quickseld-Primary"
	// HeaderCovered reports the covered sequence number of a snapshot
	// bootstrap response.
	HeaderCovered = "X-Quickseld-Wal-Covered"
)

// Defaults for Config fields left zero.
const (
	DefaultPollWait       = 5 * time.Second
	DefaultMaxBatchBytes  = 4 << 20
	DefaultBackoffMin     = 100 * time.Millisecond
	DefaultBackoffMax     = 5 * time.Second
	DefaultUnhealthyAfter = 10 * time.Second
)

// ErrGap reports that the primary has compacted the log past this
// follower's watermark: tailing cannot continue, and the follower must
// re-bootstrap from the primary's snapshot endpoint.
var ErrGap = errors.New("replica: primary compacted past the follower watermark; snapshot re-bootstrap required")

// Config wires a Fetcher to its primary and its local sink.
type Config struct {
	// PrimaryURL is the primary's base URL (e.g. http://10.0.0.1:7075).
	PrimaryURL string
	// FollowerID names this follower to the primary; the primary tracks
	// per-follower fetch watermarks under it for semi-sync acks and the
	// compaction floor.
	FollowerID string

	// Resume returns the next sequence number to fetch — the local log's
	// last sequence plus one. Re-read every round, so partial application
	// advances the watermark and failures rewind nothing.
	Resume func() uint64
	// Apply hands a verified, dense run of records to the local sink along
	// with the primary's durable tail. The sink must make them durable
	// before returning; an error fails the round (the records are refetched
	// after backoff).
	Apply func(recs []wal.Record, primaryTail uint64) error
	// OnStatus, when non-nil, receives the follower's catch-up state after
	// every round — the hook that keeps the registry's replication-lag
	// gauge and readiness probe current.
	OnStatus func(Status)

	// Client issues the fetch requests; nil builds one whose timeout
	// comfortably exceeds PollWait.
	Client *http.Client
	// PollWait is the server-side long-poll duration requested when caught
	// up (default 5s).
	PollWait time.Duration
	// MaxBatchBytes caps one response body (default 4 MiB).
	MaxBatchBytes int
	// BackoffMin and BackoffMax bound the jittered exponential retry
	// backoff (defaults 100ms and 5s).
	BackoffMin, BackoffMax time.Duration
	// UnhealthyAfter is how long the fetcher may go without a successful
	// round before reporting itself unhealthy (default 10s).
	UnhealthyAfter time.Duration

	// Logger receives fetch-loop warnings; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.PollWait <= 0 {
		c.PollWait = DefaultPollWait
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = DefaultBackoffMin
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = DefaultBackoffMax
		if c.BackoffMax < c.BackoffMin {
			c.BackoffMax = c.BackoffMin
		}
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = DefaultUnhealthyAfter
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.PollWait + 15*time.Second}
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	return c
}

// Status is the follower's catch-up state after one fetch round.
type Status struct {
	// Lag is the primary's durable tail minus the follower's applied
	// watermark, as of the last successful round.
	Lag uint64 `json:"lag"`
	// CaughtUp latches true the first time lag reaches zero: the follower
	// has served every record the primary had.
	CaughtUp bool `json:"caught_up"`
	// Healthy is false once UnhealthyAfter has passed without a successful
	// round — the primary is unreachable or persistently failing.
	Healthy bool `json:"healthy"`
}

// Stats snapshots the fetcher's counters.
type Stats struct {
	Fetches       uint64 `json:"fetches"`
	FetchErrors   uint64 `json:"fetch_errors"`
	TornResponses uint64 `json:"torn_responses"`
	GapResponses  uint64 `json:"gap_responses"`
	Records       uint64 `json:"records"`
	Bytes         uint64 `json:"bytes"`
	Lag           uint64 `json:"lag"`
	CaughtUp      bool   `json:"caught_up"`
	Healthy       bool   `json:"healthy"`
	// PrimaryURL is the reachable base URL the primary last stamped on a
	// WAL response (X-Quickseld-Primary, its -advertise-url); empty until
	// a primary that advertises itself answers.
	PrimaryURL string `json:"primary_url,omitempty"`
}

// Fetcher tails one primary's WAL. Build with NewFetcher, drive with Run
// (usually in its own goroutine), and stop with Stop, which cancels the
// in-flight request and waits for Run to return.
type Fetcher struct {
	cfg     Config
	done    chan struct{}
	stopped chan struct{}
	stopO   sync.Once
	log     *slog.Logger

	// Test hooks; the zero values select real time and math/rand.
	sleepFn  func(d time.Duration)
	jitterFn func() float64

	fetches, fetchErrs, torn, gaps, records, bytes atomic.Uint64
	lag                                            atomic.Uint64
	caughtUp                                       atomic.Bool
	lastOK                                         atomic.Int64           // unix nanos of the last successful round
	primaryURL                                     atomic.Pointer[string] // last X-Quickseld-Primary seen
}

// NewFetcher builds a fetcher; Config.Resume and Config.Apply are required.
func NewFetcher(cfg Config) (*Fetcher, error) {
	if cfg.PrimaryURL == "" {
		return nil, fmt.Errorf("replica: Config.PrimaryURL is required")
	}
	if cfg.Resume == nil || cfg.Apply == nil {
		return nil, fmt.Errorf("replica: Config.Resume and Config.Apply are required")
	}
	return &Fetcher{
		cfg:     cfg.withDefaults(),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		log:     cfg.withDefaults().Logger,
	}, nil
}

// Stop cancels the in-flight fetch and blocks until Run has returned. Safe
// to call more than once; a no-op if Run already exited.
func (f *Fetcher) Stop() {
	f.stopO.Do(func() { close(f.done) })
	<-f.stopped
}

// Stats snapshots the fetcher's counters and catch-up state.
func (f *Fetcher) Stats() Stats {
	st := f.status()
	return Stats{
		Fetches:       f.fetches.Load(),
		FetchErrors:   f.fetchErrs.Load(),
		TornResponses: f.torn.Load(),
		GapResponses:  f.gaps.Load(),
		Records:       f.records.Load(),
		Bytes:         f.bytes.Load(),
		Lag:           st.Lag,
		CaughtUp:      st.CaughtUp,
		Healthy:       st.Healthy,
		PrimaryURL:    f.PrimaryURL(),
	}
}

// PrimaryURL reports the primary's self-advertised base URL, learned from
// the X-Quickseld-Primary header on WAL responses ("" until seen).
func (f *Fetcher) PrimaryURL() string {
	if p := f.primaryURL.Load(); p != nil {
		return *p
	}
	return ""
}

func (f *Fetcher) status() Status {
	ok := f.lastOK.Load()
	return Status{
		Lag:      f.lag.Load(),
		CaughtUp: f.caughtUp.Load(),
		Healthy:  ok > 0 && time.Since(time.Unix(0, ok)) <= f.cfg.UnhealthyAfter,
	}
}

// Run drives the fetch loop until Stop is called (returns nil), the
// context is canceled (returns the context error), or the primary reports
// a compaction gap (returns ErrGap; the caller must re-bootstrap from a
// snapshot). Transport errors, 5xx bursts, and torn responses are retried
// internally under jittered exponential backoff and never end the loop.
func (f *Fetcher) Run(ctx context.Context) error {
	defer close(f.stopped)
	backoff := f.cfg.BackoffMin
	for {
		select {
		case <-f.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		progressed, err := f.round(ctx)
		if f.cfg.OnStatus != nil {
			f.cfg.OnStatus(f.status())
		}
		switch {
		case errors.Is(err, ErrGap):
			return ErrGap
		case err != nil:
			select {
			case <-f.done:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			f.fetchErrs.Add(1)
			f.log.Warn("replication fetch failed; backing off",
				slog.Any("error", err), slog.Duration("backoff", backoff))
			f.sleep(f.jittered(backoff))
			backoff *= 2
			if backoff > f.cfg.BackoffMax {
				backoff = f.cfg.BackoffMax
			}
		case !progressed && f.lag.Load() > 0:
			// Defensive: a successful but empty round while behind (the
			// primary returned 200 with no records below its tail) must not
			// spin hot. Should not happen with a correct primary.
			f.sleep(f.jittered(f.cfg.BackoffMin))
		default:
			backoff = f.cfg.BackoffMin
			// No sleep: the server-side long poll paces a caught-up loop.
		}
	}
}

// round performs one fetch: request, verify, apply. It reports whether any
// records were applied.
func (f *Fetcher) round(ctx context.Context) (progressed bool, err error) {
	from := f.cfg.Resume()
	u := fmt.Sprintf("%s/v1/replication/wal?from=%d&follower=%s&wait=%s&max_bytes=%d",
		strings.TrimSuffix(f.cfg.PrimaryURL, "/"), from,
		url.QueryEscape(f.cfg.FollowerID), f.cfg.PollWait, f.cfg.MaxBatchBytes)
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() { // Stop cancels the in-flight request, not just the loop.
		select {
		case <-f.done:
			cancel()
		case <-rctx.Done():
		}
	}()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	f.fetches.Add(1)
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		f.gaps.Add(1)
		return false, ErrGap
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("primary returned %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(f.cfg.MaxBatchBytes)+wal.MaxPayload))
	if err != nil {
		return false, fmt.Errorf("read response: %w", err)
	}
	f.bytes.Add(uint64(len(body)))
	tail, _ := strconv.ParseUint(resp.Header.Get(HeaderTail), 10, 64)
	if adv := resp.Header.Get(HeaderPrimary); adv != "" {
		f.primaryURL.Store(&adv)
	}

	// Verify the body frame by frame: CRC, length, and the dense sequence
	// run starting exactly at from. The verified prefix is applied; a torn
	// or corrupt tail is dropped and refetched next round.
	var recs []wal.Record
	data, expect, torn := body, from, false
	for len(data) > 0 {
		rec, n, derr := wal.DecodeFrame(data)
		if derr != nil || rec.Seq != expect {
			torn = true
			break
		}
		recs = append(recs, rec)
		expect++
		data = data[n:]
	}
	if torn {
		f.torn.Add(1)
		f.log.Warn("torn replication response; keeping verified prefix",
			slog.Uint64("from", from), slog.Int("verified", len(recs)), slog.Int("dropped_bytes", len(data)))
	}
	if len(recs) > 0 {
		if err := f.cfg.Apply(recs, tail); err != nil {
			return false, fmt.Errorf("apply: %w", err)
		}
		f.records.Add(uint64(len(recs)))
	}
	applied := expect - 1
	lag := uint64(0)
	if tail > applied {
		lag = tail - applied
	}
	f.lag.Store(lag)
	if lag == 0 {
		f.caughtUp.Store(true)
	}
	f.lastOK.Store(time.Now().UnixNano())
	if torn && len(recs) == 0 {
		// Nothing usable arrived: treat as a round failure so backoff kicks
		// in instead of hammering a source that keeps sending garbage.
		return false, fmt.Errorf("response carried no verifiable frames")
	}
	return len(recs) > 0, nil
}

// jittered draws a sleep uniformly from [d/2, d): backoff retains its
// exponential envelope while concurrent followers decorrelate.
func (f *Fetcher) jittered(d time.Duration) time.Duration {
	j := f.jitterFn
	if j == nil {
		j = rand.Float64
	}
	return d/2 + time.Duration(float64(d/2)*j())
}

// sleep waits d or until Stop, whichever comes first.
func (f *Fetcher) sleep(d time.Duration) {
	if f.sleepFn != nil {
		f.sleepFn(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.done:
	}
}

// FetchSnapshot bootstraps from the primary's snapshot endpoint. It
// returns the snapshot file bytes, or found=false when the primary has no
// snapshot configured (the follower then starts empty and tails from
// sequence 1).
func FetchSnapshot(ctx context.Context, client *http.Client, primaryURL string) (data []byte, found bool, err error) {
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	u := strings.TrimSuffix(primaryURL, "/") + "/v1/replication/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("replica: read snapshot: %w", err)
		}
		return data, true, nil
	case http.StatusNoContent:
		return nil, false, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("replica: snapshot bootstrap: primary returned %s: %s", resp.Status, body)
	}
}
