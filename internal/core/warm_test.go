package core

import (
	"math"
	"math/rand"
	"testing"

	"quicksel/internal/geom"
)

// randBox draws a random sub-box of the unit cube.
func randBox(rng *rand.Rand, d int) geom.Box {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for k := 0; k < d; k++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[k], hi[k] = a, b
	}
	return geom.NewBox(lo, hi)
}

// jitterBox returns box shifted by at most eps per corner, for near-duplicate
// workloads.
func jitterBox(rng *rand.Rand, b geom.Box, eps float64) geom.Box {
	lo := make([]float64, b.Dim())
	hi := make([]float64, b.Dim())
	for k := range lo {
		lo[k] = b.Lo[k] + eps*(rng.Float64()-0.5)
		hi[k] = b.Hi[k] + eps*(rng.Float64()-0.5)
		if lo[k] < 0 {
			lo[k] = 0
		}
		if hi[k] > 1 {
			hi[k] = 1
		}
		if hi[k] < lo[k] {
			lo[k], hi[k] = hi[k], lo[k]
		}
	}
	return geom.NewBox(lo, hi)
}

func observeRandom(t *testing.T, m *Model, rng *rand.Rand, d, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b := randBox(rng, d)
		if err := m.Observe(b, b.Volume()); err != nil {
			t.Fatal(err)
		}
	}
}

func weightsRelErr(got, want []float64) float64 {
	var diff2, ref2 float64
	for i := range want {
		dv := got[i] - want[i]
		diff2 += dv * dv
		ref2 += want[i] * want[i]
	}
	return math.Sqrt(diff2) / (1 + math.Sqrt(ref2))
}

func TestWarmIncrementalMatchesFrozenColdSolve(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, d := range []int{1, 2, 5} {
			for _, batch := range []int{1, 5, 12} {
				m, err := New(Config{Dim: d, Seed: seed, FixedSubpops: 60, WarmStart: true, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed * 100))
				observeRandom(t, m, rng, d, 20)
				if err := m.Train(); err != nil {
					t.Fatal(err)
				}
				if m.TrainMode() != TrainModeFull {
					t.Fatalf("first train mode = %q", m.TrainMode())
				}
				observeRandom(t, m, rng, d, batch)
				if err := m.Train(); err != nil {
					t.Fatal(err)
				}
				if m.TrainMode() != TrainModeIncremental {
					t.Fatalf("seed=%d d=%d batch=%d: second train mode = %q, want incremental", seed, d, batch, m.TrainMode())
				}
				cold, err := m.TrainFrozenForTest()
				if err != nil {
					t.Fatal(err)
				}
				if e := weightsRelErr(m.Weights(), cold); e > 1e-6 {
					t.Fatalf("seed=%d d=%d batch=%d: warm vs frozen cold rel err %g", seed, d, batch, e)
				}
			}
		}
	}
}

func TestWarmLargeBatchFallsBackToFull(t *testing.T) {
	m, err := New(Config{Dim: 2, Seed: 1, FixedSubpops: 40, WarmStart: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	observeRandom(t, m, rng, 2, 10)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	// 11 > 40/4 pending edits: must take the full path.
	observeRandom(t, m, rng, 2, 11)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if m.TrainMode() != TrainModeFull {
		t.Fatalf("train mode = %q, want full for a large batch", m.TrainMode())
	}
	// A small follow-up batch goes incremental again off the refreshed factor.
	observeRandom(t, m, rng, 2, 3)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if m.TrainMode() != TrainModeIncremental {
		t.Fatalf("train mode = %q, want incremental after refresh", m.TrainMode())
	}
}

func TestWarmMovingSubpopBudgetFallsBackToFull(t *testing.T) {
	// No FixedSubpops and below the cap: the §3.3 budget grows with n, so
	// every train regenerates subpopulations (full path).
	m, err := New(Config{Dim: 2, Seed: 1, WarmStart: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	observeRandom(t, m, rng, 2, 8)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	observeRandom(t, m, rng, 2, 1)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if m.TrainMode() != TrainModeFull {
		t.Fatalf("train mode = %q, want full while the budget moves", m.TrainMode())
	}
}

func TestWarmRestoredModelRetrainsFullFirst(t *testing.T) {
	m, err := New(Config{Dim: 2, Seed: 3, FixedSubpops: 30, WarmStart: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	observeRandom(t, m, rng, 2, 10)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.WarmStateForTest() {
		t.Fatal("restored model must not claim a warm factorization")
	}
	b := randBox(rng, 2)
	if err := r.Observe(b, b.Volume()); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if r.TrainMode() != TrainModeFull {
		t.Fatalf("restored train mode = %q, want full", r.TrainMode())
	}
	// The rebuilt factorization warms the one after.
	b = randBox(rng, 2)
	if err := r.Observe(b, b.Volume()); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if r.TrainMode() != TrainModeIncremental {
		t.Fatalf("second post-restore train mode = %q, want incremental", r.TrainMode())
	}
}

func TestWarmDowndateFailureFallsBackToFull(t *testing.T) {
	m, err := New(Config{Dim: 2, Seed: 4, FixedSubpops: 30, WarmStart: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	observeRandom(t, m, rng, 2, 10)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	m.CorruptWarmForTest()
	if err := m.Train(); err != nil {
		t.Fatalf("Train must recover from a failed downdate, got %v", err)
	}
	if m.TrainMode() != TrainModeFull {
		t.Fatalf("train mode = %q, want full after downdate failure", m.TrainMode())
	}
	for _, w := range m.Weights() {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("non-finite weight after fallback")
		}
	}
}

func TestWarmIterativeSolverNeverWarm(t *testing.T) {
	m, err := New(Config{Dim: 2, Seed: 5, FixedSubpops: 20, WarmStart: true, UseIterativeSolver: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	observeRandom(t, m, rng, 2, 8)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	observeRandom(t, m, rng, 2, 2)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if m.TrainMode() != TrainModeFull {
		t.Fatalf("iterative solver train mode = %q, want full", m.TrainMode())
	}
	if m.WarmStateForTest() {
		t.Fatal("iterative solver must not hold a warm factorization")
	}
}

func TestCoresetMergesNearDuplicates(t *testing.T) {
	m, err := New(Config{Dim: 2, Seed: 6, MaxObservations: 8, MergeThreshold: 0.8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	base := randBox(rng, 2)
	for i := 0; i < 20; i++ {
		b := jitterBox(rng, base, 0.01)
		if err := m.Observe(b, b.Volume()); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.NumObserved(); got != 1 {
		t.Fatalf("near-duplicate workload retained %d records, want 1", got)
	}
	w := m.ObservationWeightsForTest()
	if w[0] != 20 {
		t.Fatalf("merged weight = %g, want 20 (sum preserved)", w[0])
	}
}

func TestCoresetEvictsAtCap(t *testing.T) {
	m, err := New(Config{Dim: 2, Seed: 7, MaxObservations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	// Disjoint thin boxes along dimension 0: nothing merges.
	for i := 0; i < 12; i++ {
		lo := []float64{float64(i) / 12, 0.1}
		hi := []float64{float64(i)/12 + 0.02, 0.9}
		if err := m.Observe(geom.NewBox(lo, hi), 0.02*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.NumObserved(); got != 5 {
		t.Fatalf("capped history holds %d records, want 5", got)
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
}

func TestCoresetEstimatesBoundedVsUnmerged(t *testing.T) {
	const d = 2
	mk := func(maxObs int) *Model {
		m, err := New(Config{Dim: d, Seed: 8, FixedSubpops: 50, MaxObservations: maxObs, MergeThreshold: 0.85, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	merged, unmerged := mk(12), mk(0)
	rng := rand.New(rand.NewSource(16))
	// A clustered workload: 6 anchor boxes, several jittered repeats each.
	anchors := make([]geom.Box, 6)
	for i := range anchors {
		anchors[i] = randBox(rng, d)
	}
	feed := rand.New(rand.NewSource(17))
	for i := 0; i < 48; i++ {
		b := jitterBox(feed, anchors[i%len(anchors)], 0.005)
		sel := b.Volume()
		if err := merged.Observe(b, sel); err != nil {
			t.Fatal(err)
		}
		if err := unmerged.Observe(b, sel); err != nil {
			t.Fatal(err)
		}
	}
	if merged.NumObserved() >= unmerged.NumObserved() {
		t.Fatalf("coreset did not shrink the history: %d vs %d", merged.NumObserved(), unmerged.NumObserved())
	}
	if err := merged.Train(); err != nil {
		t.Fatal(err)
	}
	if err := unmerged.Train(); err != nil {
		t.Fatal(err)
	}
	probes := rand.New(rand.NewSource(18))
	var worst, se2Merged, se2Unmerged float64
	const nProbes = 50
	for i := 0; i < nProbes; i++ {
		b := randBox(probes, d)
		truth := b.Volume() // the workload's generative model: sel = volume
		em, err := merged.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		eu, err := unmerged.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(em - eu); diff > worst {
			worst = diff
		}
		se2Merged += (em - truth) * (em - truth)
		se2Unmerged += (eu - truth) * (eu - truth)
	}
	// Point-wise the two models also differ by subpopulation sampling noise
	// (different histories draw different centers), so bound the divergence
	// loosely and the accuracy loss tightly: collapsing near-duplicates must
	// not degrade the model's error against ground truth.
	if worst > 0.15 {
		t.Fatalf("coreset-merged estimates diverge from unmerged by %g (> 0.15)", worst)
	}
	rmsMerged := math.Sqrt(se2Merged / nProbes)
	rmsUnmerged := math.Sqrt(se2Unmerged / nProbes)
	if rmsMerged > rmsUnmerged+0.03 {
		t.Fatalf("coreset RMS error %g exceeds unmerged %g by more than 0.03", rmsMerged, rmsUnmerged)
	}
}

func TestWarmCoresetMergeAndEvictStayConsistent(t *testing.T) {
	// Merges and evictions of observations already folded into the warm
	// factorization must surface as remove/add deltas so the incremental
	// solve matches the frozen cold solve of the post-edit history.
	m, err := New(Config{Dim: 2, Seed: 9, FixedSubpops: 50, WarmStart: true,
		MaxObservations: 15, MergeThreshold: 0.8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	anchors := make([]geom.Box, 5)
	for i := range anchors {
		anchors[i] = randBox(rng, 2)
	}
	for i := 0; i < 15; i++ {
		b := jitterBox(rng, anchors[i%len(anchors)], 0.005)
		if err := m.Observe(b, b.Volume()); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	// These repeats merge into folded records (remove+add deltas) and the
	// fresh disjoint boxes evict folded records (remove deltas).
	for i := 0; i < 4; i++ {
		b := jitterBox(rng, anchors[i], 0.005)
		if err := m.Observe(b, b.Volume()); err != nil {
			t.Fatal(err)
		}
	}
	lo := []float64{0.001, 0.001}
	hi := []float64{0.004, 0.004}
	if err := m.Observe(geom.NewBox(lo, hi), 0.00001); err != nil {
		t.Fatal(err)
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if m.TrainMode() != TrainModeIncremental {
		t.Fatalf("train mode = %q, want incremental", m.TrainMode())
	}
	cold, err := m.TrainFrozenForTest()
	if err != nil {
		t.Fatal(err)
	}
	if e := weightsRelErr(m.Weights(), cold); e > 1e-6 {
		t.Fatalf("warm coreset-edited solve vs frozen cold rel err %g", e)
	}
}

func TestWarmCloneTrainsBitIdentically(t *testing.T) {
	m, err := New(Config{Dim: 3, Seed: 10, FixedSubpops: 40, WarmStart: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	observeRandom(t, m, rng, 3, 12)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	observeRandom(t, m, rng, 3, 4)
	c := m.Clone()
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if err := c.Train(); err != nil {
		t.Fatal(err)
	}
	if m.TrainMode() != TrainModeIncremental || c.TrainMode() != TrainModeIncremental {
		t.Fatalf("modes: orig=%q clone=%q", m.TrainMode(), c.TrainMode())
	}
	mw, cw := m.Weights(), c.Weights()
	for i := range mw {
		if mw[i] != cw[i] {
			t.Fatalf("clone trained differently at weight %d: %v vs %v", i, mw[i], cw[i])
		}
	}
	// Diverge after the fork: training the clone further must not touch the
	// original's factorization.
	before := m.Weights()
	observeRandom(t, c, rng, 3, 2)
	if err := c.Train(); err != nil {
		t.Fatal(err)
	}
	after := m.Weights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training the clone mutated the original")
		}
	}
}

func TestSnapshotRoundTripCarriesWeights(t *testing.T) {
	m, err := New(Config{Dim: 2, Seed: 11, MaxObservations: 6, MergeThreshold: 0.8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	base := randBox(rng, 2)
	for i := 0; i < 10; i++ {
		b := jitterBox(rng, base, 0.005)
		if err := m.Observe(b, b.Volume()); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	mw, rw := m.ObservationWeightsForTest(), r.ObservationWeightsForTest()
	if len(mw) != len(rw) {
		t.Fatalf("restored %d observations, want %d", len(rw), len(mw))
	}
	for i := range mw {
		if mw[i] != rw[i] {
			t.Fatalf("weight %d: %g vs %g", i, rw[i], mw[i])
		}
	}
	probe := randBox(rng, 2)
	em, err := m.Estimate(probe)
	if err != nil {
		t.Fatal(err)
	}
	er, err := r.Estimate(probe)
	if err != nil {
		t.Fatal(err)
	}
	if em != er {
		t.Fatalf("restored estimate %v differs from original %v", er, em)
	}
}
