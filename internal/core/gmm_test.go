package core

import (
	"math"
	"math/rand"
	"testing"

	"quicksel/internal/geom"
	"quicksel/internal/stats"
	"quicksel/internal/workload"
)

func TestGaussianModelUniformPrior(t *testing.T) {
	g, err := NewGaussianModel(Config{Dim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("prior estimate = %g, want 0.25", got)
	}
}

func TestGaussianModelReproducesObservations(t *testing.T) {
	g, err := NewGaussianModel(Config{Dim: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := []struct {
		box geom.Box
		sel float64
	}{
		{geom.NewBox([]float64{0, 0}, []float64{0.5, 1}), 0.7},
		{geom.NewBox([]float64{0.5, 0}, []float64{1, 1}), 0.3},
		{geom.NewBox([]float64{0, 0}, []float64{1, 0.5}), 0.5},
	}
	for _, o := range obs {
		if err := g.Observe(o.box, o.sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Train(); err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		got, err := g.Estimate(o.box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-o.sel) > 0.05 {
			t.Errorf("query %d: estimate %g, want ≈%g", i, got, o.sel)
		}
	}
	whole, err := g.Estimate(geom.Unit(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole-1) > 0.05 {
		t.Errorf("estimate of B0 = %g, want ≈1", whole)
	}
	if g.ParamCount() != 4*g.NumObserved() {
		t.Errorf("ParamCount = %d, want %d", g.ParamCount(), 4*g.NumObserved())
	}
}

func TestGaussianModelValidation(t *testing.T) {
	if _, err := NewGaussianModel(Config{Dim: 0}); err == nil {
		t.Error("expected error for Dim 0")
	}
	g, err := NewGaussianModel(Config{Dim: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Observe(geom.Unit(3), 0.5); err == nil {
		t.Error("expected dim mismatch")
	}
	if _, err := g.Estimate(geom.Unit(3)); err == nil {
		t.Error("expected dim mismatch")
	}
}

// TestGaussianVsUniformOnWorkload checks both variants learn the same
// workload to comparable accuracy — the premise behind the paper's claim
// that the choice is about training cost, not expressiveness.
func TestGaussianVsUniformOnWorkload(t *testing.T) {
	ds, err := workload.NewGaussian(workload.GaussianConfig{Dim: 2, Corr: 0.5, Rows: 15000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	train := workload.Observe(ds, workload.GaussianQueries(ds.Schema, 80, workload.RandomShift, 5))
	test := workload.Observe(ds, workload.GaussianQueries(ds.Schema, 50, workload.RandomShift, 6))

	umm := mustModel(t, Config{Dim: 2, Seed: 7})
	gmm, err := NewGaussianModel(Config{Dim: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range train {
		if err := umm.Observe(o.Query.Box(), o.Sel); err != nil {
			t.Fatal(err)
		}
		if err := gmm.Observe(o.Query.Box(), o.Sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := umm.Train(); err != nil {
		t.Fatal(err)
	}
	if err := gmm.Train(); err != nil {
		t.Fatal(err)
	}
	var eU, eG stats.Summary
	for _, o := range test {
		b := o.Query.Box()
		u, err := umm.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		g, err := gmm.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		eU.Add(stats.RelativeError(o.Sel, u))
		eG.Add(stats.RelativeError(o.Sel, g))
	}
	t.Logf("UMM err %.3f vs GMM err %.3f", eU.Mean(), eG.Mean())
	// Both must be usable models (each beating a 100% error bar) and within
	// a factor of each other.
	if eU.Mean() > 1 || eG.Mean() > 1 {
		t.Errorf("mixture errors too high: UMM %.3f GMM %.3f", eU.Mean(), eG.Mean())
	}
	if eG.Mean() > 4*eU.Mean()+0.05 {
		t.Errorf("GMM (%.3f) should be competitive with UMM (%.3f)", eG.Mean(), eU.Mean())
	}
}

func TestGaussianModelEstimatesInRange(t *testing.T) {
	g, err := NewGaussianModel(Config{Dim: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		lo := []float64{rng.Float64() * 0.7, rng.Float64() * 0.7}
		b := geom.NewBox(lo, []float64{lo[0] + 0.2, lo[1] + 0.2}).Clip(geom.Unit(2))
		if err := g.Observe(b, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 30; k++ {
		lo := []float64{rng.Float64(), rng.Float64()}
		b := geom.NewBox(lo, []float64{lo[0] + rng.Float64(), lo[1] + rng.Float64()}).Clip(geom.Unit(2))
		e, err := g.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		if e < 0 || e > 1 || math.IsNaN(e) {
			t.Fatalf("estimate %g out of range", e)
		}
	}
}
