package core

// Failure-injection tests: degenerate, contradictory, and adversarial
// inputs must never panic, produce NaN estimates, or leave the model in an
// unusable state (DESIGN.md §7).

import (
	"math"
	"math/rand"
	"testing"

	"quicksel/internal/geom"
)

func TestContradictoryObservationsAreReconciled(t *testing.T) {
	// The same box asserted at two different selectivities: the penalized
	// least-squares training must settle near their mean rather than
	// diverging or failing.
	m := mustModel(t, Config{Dim: 2, Seed: 1})
	b := geom.NewBox([]float64{0.2, 0.2}, []float64{0.6, 0.6})
	if err := m.Observe(b, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(b, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) || got < 0.1 || got > 0.7 {
		t.Errorf("contradiction estimate = %g, want within the asserted band", got)
	}
}

func TestManyDuplicateObservations(t *testing.T) {
	// 50 identical observations must not make Q singular beyond what the
	// ridge handles.
	m := mustModel(t, Config{Dim: 2, Seed: 2})
	b := geom.NewBox([]float64{0.1, 0.1}, []float64{0.4, 0.4})
	for i := 0; i < 50; i++ {
		if err := m.Observe(b, 0.35); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.35) > 0.05 {
		t.Errorf("duplicate-heavy estimate = %g, want ≈0.35", got)
	}
}

func TestTinyBoxesDoNotBlowUpConditioning(t *testing.T) {
	// Near-degenerate observed boxes yield huge 1/|G| entries in Q; the
	// solve must stay finite.
	m := mustModel(t, Config{Dim: 2, Seed: 3})
	for i := 0; i < 10; i++ {
		lo := []float64{0.1 * float64(i), 0.1 * float64(i)}
		hi := []float64{lo[0] + 1e-7, lo[1] + 1e-7}
		if err := m.Observe(geom.NewBox(lo, hi), 0.001); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(geom.Unit(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) || got < 0 || got > 1 {
		t.Errorf("estimate = %g with near-degenerate training boxes", got)
	}
}

func TestBoundaryBoxes(t *testing.T) {
	// Observations flush against every face of the unit cube.
	m := mustModel(t, Config{Dim: 2, Seed: 4})
	faces := []geom.Box{
		geom.NewBox([]float64{0, 0}, []float64{0.05, 1}),
		geom.NewBox([]float64{0.95, 0}, []float64{1, 1}),
		geom.NewBox([]float64{0, 0}, []float64{1, 0.05}),
		geom.NewBox([]float64{0, 0.95}, []float64{1, 1}),
	}
	for _, f := range faces {
		if err := m.Observe(f, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	for _, f := range faces {
		got, err := m.Estimate(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-0.1) > 0.05 {
			t.Errorf("boundary face %v: estimate %g, want ≈0.1", f, got)
		}
	}
}

func TestZeroSelectivityEverywhere(t *testing.T) {
	// All observed selectivities zero except the implicit default (P0, 1):
	// mass must be pushed outside the observed boxes.
	m := mustModel(t, Config{Dim: 1, Seed: 5})
	left := geom.NewBox([]float64{0}, []float64{0.5})
	if err := m.Observe(left, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	gotLeft, err := m.Estimate(left)
	if err != nil {
		t.Fatal(err)
	}
	gotRight, err := m.Estimate(geom.NewBox([]float64{0.5}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if gotLeft > 0.05 {
		t.Errorf("zero-observed region estimates %g, want ≈0", gotLeft)
	}
	if math.Abs(gotRight-1) > 0.05 {
		t.Errorf("complement estimates %g, want ≈1", gotRight)
	}
}

func TestRetrainAfterMoreObservations(t *testing.T) {
	// Train, observe more, estimate again: the lazy retrain must pick up
	// the new information.
	m := mustModel(t, Config{Dim: 1, Seed: 6})
	if err := m.Observe(geom.NewBox([]float64{0}, []float64{0.5}), 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Estimate(geom.Unit(1)); err != nil {
		t.Fatal(err)
	}
	// New evidence: the left half actually holds 90%.
	if err := m.Observe(geom.NewBox([]float64{0}, []float64{0.5}), 0.9); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(geom.NewBox([]float64{0}, []float64{0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.6 {
		t.Errorf("retrained estimate = %g, should move toward the newer evidence", got)
	}
}

func TestSubpopulationInvariants(t *testing.T) {
	// After training, every subpopulation box lies inside the unit cube
	// with strictly positive volume — required for Q's diagonal 1/|G_z|.
	m := mustModel(t, Config{Dim: 3, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	unit := geom.Unit(3)
	for i := 0; i < 30; i++ {
		lo := []float64{rng.Float64() * 0.8, rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := []float64{lo[0] + 0.2, lo[1] + 0.2, lo[2] + 0.2}
		if err := m.Observe(geom.NewBox(lo, hi).Clip(unit), rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	subs := m.Subpopulations()
	if len(subs) != m.ParamCount() {
		t.Fatalf("Subpopulations (%d) disagrees with ParamCount (%d)", len(subs), m.ParamCount())
	}
	for i, g := range subs {
		if !unit.ContainsBox(g) {
			t.Errorf("subpopulation %d escapes the unit cube: %v", i, g)
		}
		if g.Volume() <= 0 {
			t.Errorf("subpopulation %d has non-positive volume: %v", i, g)
		}
	}
	// Mutating the returned copies must not affect the model.
	subs[0].Lo[0] = -99
	if m.Subpopulations()[0].Lo[0] == -99 {
		t.Error("Subpopulations must return copies")
	}
}

func TestHighDimensionalTraining(t *testing.T) {
	// 10 dimensions (Fig 7d's extreme) at modest size must train cleanly.
	m := mustModel(t, Config{Dim: 10, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	unit := geom.Unit(10)
	for i := 0; i < 20; i++ {
		lo := make([]float64, 10)
		hi := make([]float64, 10)
		for d := range lo {
			lo[d] = rng.Float64() * 0.5
			hi[d] = lo[d] + 0.3 + rng.Float64()*0.2
		}
		if err := m.Observe(geom.NewBox(lo, hi).Clip(unit), rng.Float64()*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(unit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.05 {
		t.Errorf("10-dim estimate of B0 = %g, want ≈1", got)
	}
}
