package core

import (
	"math/rand"
	"testing"

	"quicksel/internal/geom"
)

// observeWorkload feeds the same deterministic stream of (box, selectivity)
// pairs into a model.
func observeWorkload(t *testing.T, m *Model, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dim := m.Dim()
	for q := 0; q < n; q++ {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for d := 0; d < dim; d++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		if err := m.Observe(geom.NewBox(lo, hi), rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: training with any worker count produces bit-identical assembled
// matrices, weights, and estimates to the sequential (Workers=1) path. This
// is what keeps PR 1's snapshots reproducible on machines with different
// core counts.
func TestParallelTrainingBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, dim := range []int{1, 2, 4} {
			seq := mustModel(t, Config{Dim: dim, Seed: seed, Workers: 1})
			observeWorkload(t, seq, seed*100, 25)
			if err := seq.Train(); err != nil {
				t.Fatalf("seed=%d dim=%d: sequential train: %v", seed, dim, err)
			}

			for _, workers := range []int{2, 3, 8} {
				parl := mustModel(t, Config{Dim: dim, Seed: seed, Workers: workers})
				observeWorkload(t, parl, seed*100, 25)
				if err := parl.Train(); err != nil {
					t.Fatalf("seed=%d dim=%d workers=%d: train: %v", seed, dim, workers, err)
				}

				// Assembled QP data must match bit-for-bit.
				qs, as, ss := seq.assemble()
				qp, ap, sp := parl.assemble()
				for i, v := range qs.Data {
					if qp.Data[i] != v {
						t.Fatalf("seed=%d dim=%d workers=%d: Q[%d] = %v, want %v", seed, dim, workers, i, qp.Data[i], v)
					}
				}
				for i, v := range as.Data {
					if ap.Data[i] != v {
						t.Fatalf("seed=%d dim=%d workers=%d: A[%d] = %v, want %v", seed, dim, workers, i, ap.Data[i], v)
					}
				}
				for i, v := range ss {
					if sp[i] != v {
						t.Fatalf("seed=%d dim=%d workers=%d: s[%d] = %v, want %v", seed, dim, workers, i, sp[i], v)
					}
				}

				// Trained weights and subpopulations must match bit-for-bit.
				ws, wp := seq.Weights(), parl.Weights()
				if len(ws) != len(wp) {
					t.Fatalf("seed=%d dim=%d workers=%d: %d vs %d weights", seed, dim, workers, len(wp), len(ws))
				}
				for i := range ws {
					if ws[i] != wp[i] {
						t.Fatalf("seed=%d dim=%d workers=%d: weight %d = %v, want %v", seed, dim, workers, i, wp[i], ws[i])
					}
				}
				ss2, sp2 := seq.Subpopulations(), parl.Subpopulations()
				for i := range ss2 {
					if !ss2[i].Equal(sp2[i]) {
						t.Fatalf("seed=%d dim=%d workers=%d: subpop %d differs", seed, dim, workers, i)
					}
				}

				// And so must estimates on fresh query boxes.
				qrng := rand.New(rand.NewSource(seed * 777))
				for q := 0; q < 20; q++ {
					lo := make([]float64, dim)
					hi := make([]float64, dim)
					for d := 0; d < dim; d++ {
						a, b := qrng.Float64(), qrng.Float64()
						if a > b {
							a, b = b, a
						}
						lo[d], hi[d] = a, b
					}
					box := geom.NewBox(lo, hi)
					es, err := seq.Estimate(box)
					if err != nil {
						t.Fatal(err)
					}
					ep, err := parl.Estimate(box)
					if err != nil {
						t.Fatal(err)
					}
					if es != ep {
						t.Fatalf("seed=%d dim=%d workers=%d: estimate %v, want %v", seed, dim, workers, ep, es)
					}
				}
			}
		}
	}
}

// Workers is a runtime knob, but it must survive the snapshot round-trip:
// the serving daemon retrains on snapshot clones, and a clone that forgets
// the operator's parallelism cap would saturate the machine.
func TestSnapshotPreservesWorkers(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 1, Workers: 3})
	r, err := Restore(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.Workers != 3 {
		t.Errorf("restored Workers = %d, want 3", r.cfg.Workers)
	}
}

// The compiled estimate path must be allocation-free after training.
func TestEstimateAllocationFree(t *testing.T) {
	m := mustModel(t, Config{Dim: 3, Seed: 11})
	observeWorkload(t, m, 42, 20)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	box := geom.NewBox([]float64{0.1, 0.2, 0.3}, []float64{0.6, 0.7, 0.8})
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Estimate(box); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Estimate allocates %v objects per call, want 0", allocs)
	}
}

// Pruned compilation: zero weights contribute nothing and the pruned fast
// path agrees with a direct evaluation of the mixture formula.
func TestCompiledModelMatchesDirectEvaluation(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 13})
	observeWorkload(t, m, 99, 15)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	// Zero out some weights and recompile to exercise pruning.
	for i := 0; i < len(m.weights); i += 3 {
		m.weights[i] = 0
	}
	m.compiled = compile(m.subpops, m.weights)

	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 50; q++ {
		lo := []float64{rng.Float64() * 0.5, rng.Float64() * 0.5}
		hi := []float64{lo[0] + rng.Float64()*0.5, lo[1] + rng.Float64()*0.5}
		box := geom.NewBox(lo, hi)
		got, err := m.Estimate(box)
		if err != nil {
			t.Fatal(err)
		}
		b := box.Clip(m.unit)
		var want float64
		for j, g := range m.subpops {
			w := m.weights[j]
			if w == 0 {
				continue
			}
			want += w / g.Volume() * b.IntersectionVolume(g)
		}
		if want < 0 {
			want = 0
		}
		if want > 1 {
			want = 1
		}
		if got != want {
			t.Fatalf("query %d: compiled estimate = %v, direct = %v", q, got, want)
		}
	}
}
