package core

// This file implements the Gaussian-mixture variant QuickSel's §3.1
// deliberately rejects: "the Gaussian mixture model uses a Gaussian
// distribution for each subpopulation ... Nevertheless, we intentionally
// use the uniform mixture model for QuickSel due to its computational
// benefit in the training process."
//
// The paper notes the general-covariance Gaussian intersection integral
// needs numerical approximation. Restricting to diagonal covariances makes
// both training integrals closed-form, which lets this repository measure
// the UMM-vs-GMM trade-off (accuracy and training cost) instead of merely
// asserting it — see RunAblationMixture in internal/experiments:
//
//	∫ g_i·g_j dx = Π_d N(μ_id − μ_jd; 0, σ_id² + σ_jd²)
//	∫_B g_j dx   = Π_d ½[erf((hi_d−μ_jd)/(σ_jd√2)) − erf((lo_d−μ_jd)/(σ_jd√2))]
//
// Subpopulation placement reuses the UMM's workload-aware centers and
// nearest-neighbour radii (σ = radius/2, so ±2σ ≈ the UMM box).

import (
	"fmt"
	"math"
	"sort"

	"quicksel/internal/geom"
	"quicksel/internal/linalg"
	"quicksel/internal/qp"
)

// GaussianModel is the diagonal-covariance Gaussian mixture counterpart of
// Model, with the same Observe/Train/Estimate workflow.
type GaussianModel struct {
	umm *Model // reused for observation bookkeeping and point generation

	centers [][]float64
	sigmas  []float64 // isotropic σ per subpopulation
	weights []float64
	trained bool
}

// NewGaussianModel returns an empty Gaussian mixture model.
func NewGaussianModel(cfg Config) (*GaussianModel, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &GaussianModel{umm: m}, nil
}

// Observe records one (box, selectivity) training pair.
func (g *GaussianModel) Observe(box geom.Box, sel float64) error {
	if err := g.umm.Observe(box, sel); err != nil {
		return err
	}
	g.trained = false
	return nil
}

// NumObserved returns the number of recorded queries.
func (g *GaussianModel) NumObserved() int { return g.umm.NumObserved() }

// ParamCount returns the number of mixture weights after training.
func (g *GaussianModel) ParamCount() int { return len(g.weights) }

// Train places Gaussian subpopulations at the workload-aware centers and
// solves the same penalized QP as the UMM.
func (g *GaussianModel) Train() error {
	n := g.umm.NumObserved()
	if n == 0 {
		g.centers, g.sigmas, g.weights = nil, nil, nil
		g.trained = true
		return nil
	}
	centers := g.umm.sampleCenters(g.umm.targetSubpops())
	if len(centers) == 0 {
		g.centers, g.sigmas, g.weights = nil, nil, nil
		g.trained = true
		return nil
	}
	g.centers = centers
	g.sigmas = centerRadii(centers, g.umm.cfg.NearestCenters)
	for i := range g.sigmas {
		// ±2σ spans the UMM box of the same radius.
		g.sigmas[i] /= 2
		if g.sigmas[i] < 1e-6 {
			g.sigmas[i] = 1e-6
		}
	}

	m := len(centers)
	d := g.umm.cfg.Dim
	q := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := 1.0
			varSum := g.sigmas[i]*g.sigmas[i] + g.sigmas[j]*g.sigmas[j]
			for dd := 0; dd < d; dd++ {
				diff := g.centers[i][dd] - g.centers[j][dd]
				v *= math.Exp(-diff*diff/(2*varSum)) / math.Sqrt(2*math.Pi*varSum)
			}
			q.Set(i, j, v)
			q.Set(j, i, v)
		}
	}
	a := linalg.NewMatrix(n+1, m)
	s := make([]float64, n+1)
	s[0] = 1
	unit := geom.Unit(d)
	for j := 0; j < m; j++ {
		a.Set(0, j, g.boxMass(j, unit))
	}
	for i, o := range g.umm.observations {
		s[i+1] = o.sel
		for j := 0; j < m; j++ {
			a.Set(i+1, j, g.boxMass(j, o.box))
		}
	}
	w, err := qp.SolveAnalytic(&qp.Problem{Q: q, A: a, S: s, Lambda: g.umm.cfg.Lambda})
	if err != nil {
		return fmt.Errorf("core: gaussian training: %w", err)
	}
	g.weights = w
	g.trained = true
	return nil
}

// boxMass returns ∫_B g_j dx for the j-th Gaussian subpopulation.
func (g *GaussianModel) boxMass(j int, b geom.Box) float64 {
	if b.IsEmpty() {
		return 0
	}
	sigma := g.sigmas[j]
	inv := 1 / (sigma * math.Sqrt2)
	mass := 1.0
	for d := 0; d < b.Dim(); d++ {
		mu := g.centers[j][d]
		mass *= 0.5 * (math.Erf((b.Hi[d]-mu)*inv) - math.Erf((b.Lo[d]-mu)*inv))
		if mass == 0 {
			return 0
		}
	}
	return mass
}

// Estimate returns the mixture's selectivity estimate for a normalized
// box, clamped to [0,1]. Untrained models train lazily; with no usable
// subpopulations the uniform prior applies.
func (g *GaussianModel) Estimate(box geom.Box) (float64, error) {
	if box.Dim() != g.umm.cfg.Dim {
		return 0, fmt.Errorf("core: query box has dim %d, model has %d", box.Dim(), g.umm.cfg.Dim)
	}
	if !g.trained {
		if err := g.Train(); err != nil {
			return 0, err
		}
	}
	b := box.Clip(g.umm.unit)
	if len(g.weights) == 0 {
		return b.Volume(), nil
	}
	var est float64
	for j, w := range g.weights {
		if w == 0 {
			continue
		}
		est += w * g.boxMass(j, b)
	}
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

// centerRadii returns, for each center, the average distance to its k
// nearest other centers (§3.3 step 3, shared by both mixture variants).
func centerRadii(centers [][]float64, k int) []float64 {
	radii := make([]float64, len(centers))
	dists := make([]float64, 0, len(centers))
	for i, c := range centers {
		dists = dists[:0]
		for j, other := range centers {
			if j == i {
				continue
			}
			dists = append(dists, geom.SquaredDistance(c, other))
		}
		if len(dists) == 0 {
			radii[i] = 0.5
			continue
		}
		kk := k
		if kk > len(dists) {
			kk = len(dists)
		}
		sort.Float64s(dists)
		var sum float64
		for _, d2 := range dists[:kk] {
			sum += math.Sqrt(d2)
		}
		radii[i] = sum / float64(kk)
	}
	return radii
}
