package core

import (
	"errors"
	"math"
	"math/rand"

	"quicksel/internal/geom"
	"quicksel/internal/qp"
)

// Train modes reported by Model.TrainMode.
const (
	// TrainModeFull regenerated the subpopulations and refactored the QP
	// system from scratch (the paper's O(m³) path).
	TrainModeFull = "full"
	// TrainModeIncremental re-solved from the kept factorization by rank-1
	// updates (O(batch·m²)).
	TrainModeIncremental = "incremental"
)

const (
	// warmBatchDivisor bounds the incremental path to pending edits ≤
	// m/warmBatchDivisor: each rank-1 edit costs ~3m² flops against the
	// full factorization's m³/3, so at batch = m/4 the incremental path
	// still wins by ~4×, and beyond it the cold path's better cache
	// behaviour erodes the advantage.
	warmBatchDivisor = 4
	// warmMaxEditsFactor caps the rank-1 edits accumulated since the last
	// full factorization at warmMaxEditsFactor·m. Each hyperbolic/Givens
	// sweep adds rounding noise the factorization never repairs; forcing a
	// full refactorization every ~2m edits keeps the drift far below the
	// solver tolerance the property tests pin.
	warmMaxEditsFactor = 2
)

// warmDelta is one pending edit against the observation prefix already
// folded into the warm factorization: the coreset merged or evicted a
// folded record, so its old row must be removed (add=false) and, for a
// merge, the coalesced row added back (add=true). Values are captured at
// edit time because slice indices shift as the history mutates.
type warmDelta struct {
	box    geom.Box
	sel    float64
	weight float64
	add    bool
}

// TrainMode reports how the last Train call fitted the model:
// TrainModeIncremental or TrainModeFull ("" before the first Train).
func (m *Model) TrainMode() string { return m.lastTrainMode }

// setWarm installs a fresh warm state after a full analytic solve, caching
// the subpopulation SoA and reciprocal volumes used to rebuild constraint
// rows incrementally.
func (m *Model) setWarm(ws *qp.WarmState) {
	m.warm = ws
	m.warmSet = geom.BoxSetOf(m.subpops)
	m.warmInvVol = make([]float64, len(m.subpops))
	for i := range m.warmInvVol {
		m.warmInvVol[i] = 1 / m.warmSet.Volume(i)
	}
	m.warmObs = len(m.observations)
	m.warmDeltas = nil
}

// clearWarm drops the warm state; the next Train runs the full path.
func (m *Model) clearWarm() {
	m.warm = nil
	m.warmSet = nil
	m.warmInvVol = nil
	m.warmObs = 0
	m.warmDeltas = nil
}

// warmEligible reports whether the pending feedback can be folded into the
// kept factorization instead of retraining from scratch.
func (m *Model) warmEligible() bool {
	if m.warm == nil || !m.cfg.WarmStart || m.cfg.UseIterativeSolver || len(m.subpops) == 0 {
		return false
	}
	// The factorization columns are the subpopulations; the incremental
	// path requires the §3.3 budget to be exactly the frozen set (at the
	// MaxSubpops cap, or FixedSubpops). A moving budget means Train must
	// regenerate subpopulations, which is a full solve by construction.
	if m.targetSubpops() != len(m.subpops) {
		return false
	}
	edits := len(m.warmDeltas) + (len(m.observations) - m.warmObs)
	if edits == 0 {
		// Nothing pending: an explicit Train asks for a fresh fit, and the
		// historical behaviour (resampled subpopulations) is the full path.
		return false
	}
	mm := len(m.subpops)
	if edits > mm/warmBatchDivisor {
		return false
	}
	if m.warm.Edits()+edits > warmMaxEditsFactor*mm {
		return false
	}
	return true
}

// constraintRowInto writes the QP constraint row of box b — the fraction of
// each subpopulation covered by b — into row. It reproduces assemble's
// per-entry arithmetic exactly, so the row removed for an evicted
// observation is bitwise the row a full assembly would have built for it.
func (m *Model) constraintRowInto(row []float64, b geom.Box) {
	for j := range row {
		row[j] = m.warmSet.CornersIntersectionVolume(j, b.Lo, b.Hi) * m.warmInvVol[j]
	}
}

// trainIncremental folds the pending coreset deltas and the new observation
// suffix into the warm factorization and re-solves. On error the warm state
// is stale; the caller clears it and falls back to the full path.
func (m *Model) trainIncremental() error {
	row := make([]float64, len(m.subpops))
	for _, d := range m.warmDeltas {
		m.constraintRowInto(row, d.box)
		if d.add {
			m.warm.AddRow(row, d.sel, d.weight)
		} else if err := m.warm.RemoveRow(row, d.sel, d.weight); err != nil {
			return err
		}
	}
	for i := m.warmObs; i < len(m.observations); i++ {
		o := &m.observations[i]
		m.constraintRowInto(row, o.box)
		m.warm.AddRow(row, o.sel, o.weight)
	}
	w := m.warm.Solve()
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("core: warm solve produced non-finite weights")
		}
	}
	m.weights = w
	m.compiled = compile(m.subpops, m.weights)
	m.trained = true
	m.lastIters = 0
	m.lastTrainMode = TrainModeIncremental
	m.warmObs = len(m.observations)
	m.warmDeltas = nil
	return nil
}

// coresetAbsorb runs the merge/evict pass for one incoming observation.
// It returns true when the observation merged into a retained record
// (weighted-average corners and selectivity, summed weight); false when the
// caller should append it — after evicting minimum-weight records to keep
// the history under MaxObservations.
func (m *Model) coresetAbsorb(obs observation) bool {
	if best := m.bestMergeTarget(obs.box); best >= 0 {
		m.mergeObservation(best, obs)
		return true
	}
	for len(m.observations) >= m.cfg.MaxObservations {
		m.evictObservation()
	}
	return false
}

// bestMergeTarget returns the index of the retained observation with the
// highest Jaccard overlap ≥ MergeThreshold against b, or -1.
func (m *Model) bestMergeTarget(b geom.Box) int {
	best, bestSim := -1, m.cfg.MergeThreshold
	for i := range m.observations {
		if sim := m.observations[i].box.Jaccard(b); sim >= bestSim {
			best, bestSim = i, sim
		}
	}
	return best
}

// mergeObservation coalesces incoming into the retained record at index i.
// The merged box takes the weighted average of the corners — it stays valid
// and inside the unit cube because both inputs are — and the selectivity the
// weighted mean, so k raw near-duplicate observations collapse into one
// record of weight k whose constraint approximates their sum. The target's
// workload-aware points are kept; the incoming points are dropped (the rng
// already advanced past them, so replay determinism is unaffected).
func (m *Model) mergeObservation(i int, incoming observation) {
	o := &m.observations[i]
	w1, w2 := o.weight, incoming.weight
	tot := w1 + w2
	d := m.cfg.Dim
	lo := make([]float64, d)
	hi := make([]float64, d)
	for k := 0; k < d; k++ {
		lo[k] = (w1*o.box.Lo[k] + w2*incoming.box.Lo[k]) / tot
		hi[k] = (w1*o.box.Hi[k] + w2*incoming.box.Hi[k]) / tot
	}
	merged := geom.NewBox(lo, hi)
	sel := (w1*o.sel + w2*incoming.sel) / tot
	if m.warm != nil && i < m.warmObs {
		m.warmDeltas = append(m.warmDeltas,
			warmDelta{box: o.box, sel: o.sel, weight: o.weight},
			warmDelta{box: merged, sel: sel, weight: tot, add: true})
	}
	o.box, o.sel, o.weight = merged, sel, tot
}

// evictObservation removes the minimum-weight (oldest on ties) record to
// make room, recording the removal against the warm factorization when the
// victim was already folded in.
func (m *Model) evictObservation() {
	idx := 0
	for i := 1; i < len(m.observations); i++ {
		if m.observations[i].weight < m.observations[idx].weight {
			idx = i
		}
	}
	o := m.observations[idx]
	if m.warm != nil && idx < m.warmObs {
		m.warmDeltas = append(m.warmDeltas, warmDelta{box: o.box, sel: o.sel, weight: o.weight})
		m.warmObs--
	}
	m.observations = append(m.observations[:idx], m.observations[idx+1:]...)
}

// Clone returns a deep copy of the model, including the warm-start
// factorization that snapshots cannot carry: the serving daemon's trainer
// clones the live model in process (instead of a snapshot round trip) so
// the clone-train-swap cycle keeps retraining incrementally. The clone's
// PRNG resumes the same deterministic stream position, so clone and
// original behave bit-identically from here on.
func (m *Model) Clone() *Model {
	src := &countingSource{src: rand.NewSource(m.cfg.Seed)}
	for i := uint64(0); i < m.src.n; i++ {
		src.src.Int63() // fast-forward without inflating the count
	}
	src.n = m.src.n
	c := &Model{
		cfg:           m.cfg,
		rng:           rand.New(src),
		src:           src,
		unit:          geom.Unit(m.cfg.Dim),
		qlo:           make([]float64, m.cfg.Dim),
		qhi:           make([]float64, m.cfg.Dim),
		defaultPoints: copyPoints(m.defaultPoints),
		trained:       m.trained,
		compiled:      m.compiled, // immutable after compile; safe to share
		lastIters:     m.lastIters,
		lastTrainMode: m.lastTrainMode,
		warmObs:       m.warmObs,
	}
	c.observations = make([]observation, len(m.observations))
	for i, o := range m.observations {
		c.observations[i] = observation{box: o.box.Clone(), sel: o.sel, weight: o.weight, points: copyPoints(o.points)}
	}
	if len(m.subpops) > 0 {
		c.subpops = make([]geom.Box, len(m.subpops))
		for i, b := range m.subpops {
			c.subpops[i] = b.Clone()
		}
		c.weights = append([]float64(nil), m.weights...)
	}
	if m.warm != nil {
		c.warm = m.warm.Clone()
		// The SoA set and reciprocal volumes are never mutated after setWarm;
		// sharing them keeps Clone O(m²) (the factor copy) instead of O(m²·d).
		c.warmSet = m.warmSet
		c.warmInvVol = m.warmInvVol
	}
	if len(m.warmDeltas) > 0 {
		c.warmDeltas = make([]warmDelta, len(m.warmDeltas))
		for i, d := range m.warmDeltas {
			c.warmDeltas[i] = warmDelta{box: d.box.Clone(), sel: d.sel, weight: d.weight, add: d.add}
		}
	}
	return c
}
