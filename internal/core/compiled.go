package core

import "quicksel/internal/geom"

// compiledModel is the immutable serving form of a trained model:
// zero-weight subpopulations pruned, each surviving weight pre-divided by
// its box volume, and box bounds packed into a flat structure-of-arrays
// BoxSet. Estimate reduces to one multiply-add per retained subpopulation
// over two contiguous arrays — no pointer chasing, no allocation, no
// division.
//
// A compiledModel is never mutated after compile, so it can be read
// concurrently; the serving registry swaps whole models atomically and this
// is the state those swaps publish.
type compiledModel struct {
	boxes  *geom.BoxSet
	wOverV []float64 // weight_j / |G_j| per retained subpopulation
}

// compile builds the serving form from trained subpopulations and weights.
// It returns nil when nothing carries weight (the estimate is then 0, or
// the uniform prior when there are no subpopulations at all — the caller
// distinguishes the two by len(subpops)).
func compile(subpops []geom.Box, weights []float64) *compiledModel {
	nz := 0
	for _, w := range weights {
		if w != 0 {
			nz++
		}
	}
	if nz == 0 {
		return nil
	}
	c := &compiledModel{
		boxes:  geom.NewBoxSet(subpops[0].Dim(), nz),
		wOverV: make([]float64, 0, nz),
	}
	for j, w := range weights {
		if w == 0 {
			continue
		}
		c.boxes.Append(subpops[j])
		c.wOverV = append(c.wOverV, w/subpops[j].Volume())
	}
	return c
}

// estimate returns Σ_j (w_j/|G_j|)·|B ∩ G_j| for the clipped query corners.
// The caller clamps the result to [0, 1].
func (c *compiledModel) estimate(qlo, qhi []float64) float64 {
	var est float64
	for j, wv := range c.wOverV {
		est += wv * c.boxes.CornersIntersectionVolume(j, qlo, qhi)
	}
	return est
}
