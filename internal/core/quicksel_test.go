package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quicksel/internal/geom"
	"quicksel/internal/stats"
	"quicksel/internal/workload"
)

func mustModel(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Error("expected error for Dim 0")
	}
	if _, err := New(Config{Dim: 2, Lambda: -1}); err == nil {
		t.Error("expected error for negative Lambda")
	}
	if _, err := New(Config{Dim: 2, MaxSubpops: -5}); err == nil {
		t.Error("expected error for negative MaxSubpops")
	}
}

func TestUniformPriorBeforeObservations(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 1})
	b := geom.NewBox([]float64{0.1, 0.1}, []float64{0.6, 0.6})
	got, err := m.Estimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("uniform prior estimate = %g, want 0.25 (box volume)", got)
	}
}

func TestObserveValidation(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 1})
	if err := m.Observe(geom.Unit(3), 0.5); err == nil {
		t.Error("expected dim mismatch error")
	}
	if err := m.Observe(geom.Box{Lo: []float64{1, 1}, Hi: []float64{0, 0}}, 0.5); err == nil {
		t.Error("expected invalid box error")
	}
	if err := m.Observe(geom.Unit(2), math.NaN()); err == nil {
		t.Error("expected NaN selectivity error")
	}
	// Out-of-range selectivities clamp rather than error.
	if err := m.Observe(geom.Unit(2), 1.7); err != nil {
		t.Errorf("clampable selectivity rejected: %v", err)
	}
}

func TestModelReproducesObservedQueries(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 7})
	obs := []struct {
		box geom.Box
		sel float64
	}{
		{geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5}), 0.4},
		{geom.NewBox([]float64{0.5, 0.5}, []float64{1, 1}), 0.3},
		{geom.NewBox([]float64{0, 0.5}, []float64{0.5, 1}), 0.2},
	}
	for _, o := range obs {
		if err := m.Observe(o.box, o.sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	// The trained model must reproduce the observed selectivities closely
	// (the λ penalty enforces consistency).
	for i, o := range obs {
		got, err := m.Estimate(o.box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-o.sel) > 0.05 {
			t.Errorf("query %d: estimate = %g, want ≈%g", i, got, o.sel)
		}
	}
	// Whole-domain estimate must be ≈1 (the default query P0).
	whole, err := m.Estimate(geom.Unit(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole-1) > 0.02 {
		t.Errorf("estimate of B0 = %g, want ≈1", whole)
	}
}

func TestWeightsSumToOne(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		lo := []float64{rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := []float64{lo[0] + 0.1, lo[1] + 0.1}
		if err := m.Observe(geom.NewBox(lo, hi), rng.Float64()*0.2); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range m.Weights() {
		sum += w
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("Σw = %g, want ≈1", sum)
	}
}

func TestParamCountFollowsPaperRule(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 5})
	for i := 0; i < 30; i++ {
		if err := m.Observe(geom.Unit(2), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	// m = min(4·n, 4000) = 120.
	if got := m.ParamCount(); got != 120 {
		t.Errorf("ParamCount = %d, want 120", got)
	}
	if m.NumObserved() != 30 {
		t.Errorf("NumObserved = %d", m.NumObserved())
	}
}

func TestFixedSubpops(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 5, FixedSubpops: 16})
	for i := 0; i < 30; i++ {
		if err := m.Observe(geom.Unit(2), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if got := m.ParamCount(); got != 16 {
		t.Errorf("ParamCount = %d, want 16", got)
	}
}

func TestMaxSubpopsCap(t *testing.T) {
	m := mustModel(t, Config{Dim: 1, Seed: 5, MaxSubpops: 12})
	for i := 0; i < 30; i++ {
		if err := m.Observe(geom.Unit(1), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if got := m.ParamCount(); got > 12 {
		t.Errorf("ParamCount = %d exceeds cap 12", got)
	}
}

func TestEmptyObservedBoxFallsBackToUniform(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 5})
	empty := geom.NewBox([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err := m.Observe(empty, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.5, 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Only the default query constrains the model, so the estimate must be
	// near-uniform (the default-query subpopulations approximate it).
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("estimate = %g, want ≈0.5 (uniform)", got)
	}
}

func TestLazyTrainingOnEstimate(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 8})
	if err := m.Observe(geom.NewBox([]float64{0, 0}, []float64{0.5, 1}), 0.9); err != nil {
		t.Fatal(err)
	}
	// No explicit Train call: Estimate must train lazily.
	got, err := m.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.5, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 0.05 {
		t.Errorf("lazy-trained estimate = %g, want ≈0.9", got)
	}
}

func TestEstimateUnionAdditive(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 9})
	if err := m.Observe(geom.Unit(2), 1); err != nil {
		t.Fatal(err)
	}
	left := geom.NewBox([]float64{0, 0}, []float64{0.5, 1})
	right := geom.NewBox([]float64{0.5, 0}, []float64{1, 1})
	el, err := m.Estimate(left)
	if err != nil {
		t.Fatal(err)
	}
	er, err := m.Estimate(right)
	if err != nil {
		t.Fatal(err)
	}
	eu, err := m.EstimateUnion([]geom.Box{left, right})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eu-math.Min(el+er, 1)) > 1e-12 {
		t.Errorf("EstimateUnion = %g, want %g", eu, el+er)
	}
}

func TestIterativeSolverPath(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 10, UseIterativeSolver: true})
	// Several observations so the constrained (w >= 0) model has enough
	// subpopulations to be feasible; with a single query the positivity
	// constraint caps how much mass four subpopulations can place inside it.
	boxes := []geom.Box{
		geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5}),
		geom.NewBox([]float64{0.1, 0.1}, []float64{0.45, 0.45}),
		geom.NewBox([]float64{0, 0}, []float64{0.5, 1}),
		geom.NewBox([]float64{0.5, 0}, []float64{1, 1}),
	}
	sels := []float64{0.5, 0.4, 0.6, 0.4}
	for i, b := range boxes {
		if err := m.Observe(b, sels[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	if m.SolverIterations() == 0 {
		t.Error("iterative path should report iterations")
	}
	got, err := m.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("iterative estimate = %g, want ≈0.5", got)
	}
	whole, err := m.Estimate(geom.Unit(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole-1) > 0.1 {
		t.Errorf("iterative estimate of B0 = %g, want ≈1", whole)
	}
	// Weights from the projected solver are non-negative.
	for i, w := range m.Weights() {
		if w < 0 {
			t.Errorf("projected weight %d = %g < 0", i, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Model {
		m := mustModel(t, Config{Dim: 2, Seed: 77})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 15; i++ {
			lo := []float64{rng.Float64() * 0.7, rng.Float64() * 0.7}
			hi := []float64{lo[0] + 0.2, lo[1] + 0.2}
			if err := m.Observe(geom.NewBox(lo, hi), rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Train(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	wa, wb := a.Weights(), b.Weights()
	if len(wa) != len(wb) {
		t.Fatalf("param counts differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("weight %d differs: %g vs %g", i, wa[i], wb[i])
		}
	}
}

// TestLearnsGaussianData is the end-to-end sanity check: trained on real
// observed selectivities, the model must beat the uniform prior.
func TestLearnsGaussianData(t *testing.T) {
	ds, err := workload.NewGaussian(workload.GaussianConfig{Dim: 2, Corr: 0.5, Rows: 20000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	train := workload.Observe(ds, workload.GaussianQueries(ds.Schema, 100, workload.RandomShift, 22))
	test := workload.Observe(ds, workload.GaussianQueries(ds.Schema, 50, workload.RandomShift, 23))

	m := mustModel(t, Config{Dim: 2, Seed: 24})
	for _, o := range train {
		if err := m.Observe(o.Query.Box(), o.Sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}

	var modelErr, uniformErr stats.Summary
	for _, o := range test {
		b := o.Query.Box()
		est, err := m.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		modelErr.Add(stats.RelativeError(o.Sel, est))
		uniformErr.Add(stats.RelativeError(o.Sel, b.Volume()))
	}
	t.Logf("model err = %v | uniform err = %v", modelErr.Mean(), uniformErr.Mean())
	if modelErr.Mean() >= uniformErr.Mean() {
		t.Errorf("trained model (%.3f) must beat the uniform prior (%.3f)",
			modelErr.Mean(), uniformErr.Mean())
	}
	if modelErr.Mean() > 0.5 {
		t.Errorf("mean relative error %.3f too high for 100 training queries", modelErr.Mean())
	}
}

// Property: estimates are always within [0,1] no matter the observations.
func TestPropertyEstimateInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := New(Config{Dim: 2, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 5+rng.Intn(10); i++ {
			lo := []float64{rng.Float64(), rng.Float64()}
			hi := []float64{lo[0] + rng.Float64()*0.5, lo[1] + rng.Float64()*0.5}
			if err := m.Observe(geom.NewBox(lo, hi).Clip(geom.Unit(2)), rng.Float64()); err != nil {
				return false
			}
		}
		for k := 0; k < 10; k++ {
			lo := []float64{rng.Float64(), rng.Float64()}
			hi := []float64{lo[0] + rng.Float64(), lo[1] + rng.Float64()}
			e, err := m.Estimate(geom.NewBox(lo, hi).Clip(geom.Unit(2)))
			if err != nil || e < 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity with respect to nesting is preserved approximately
// for the trained model on consistent observations: estimate(B0) ≥
// estimate(B) for B ⊂ B0 given non-negative weights is not guaranteed by
// the relaxed QP, but the clamped estimates must at least stay ordered
// within tolerance for nested training boxes.
func TestNestedQueriesOrdered(t *testing.T) {
	m := mustModel(t, Config{Dim: 2, Seed: 30})
	inner := geom.NewBox([]float64{0.25, 0.25}, []float64{0.5, 0.5})
	outer := geom.NewBox([]float64{0, 0}, []float64{0.75, 0.75})
	if err := m.Observe(inner, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(outer, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	ei, err := m.Estimate(inner)
	if err != nil {
		t.Fatal(err)
	}
	eo, err := m.Estimate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if ei > eo+0.05 {
		t.Errorf("nested estimates inverted: inner %g > outer %g", ei, eo)
	}
}

func BenchmarkTrain(b *testing.B) {
	for _, n := range []int{25, 100} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			boxes := make([]geom.Box, n)
			sels := make([]float64, n)
			for i := range boxes {
				lo := []float64{rng.Float64() * 0.7, rng.Float64() * 0.7}
				boxes[i] = geom.NewBox(lo, []float64{lo[0] + 0.2, lo[1] + 0.2})
				sels[i] = rng.Float64()
			}
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				m, _ := New(Config{Dim: 2, Seed: 2})
				for i := range boxes {
					if err := m.Observe(boxes[i], sels[i]); err != nil {
						b.Fatal(err)
					}
				}
				if err := m.Train(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if i == len(buf) {
		return "0"
	}
	return string(buf[i:])
}
