package core

import (
	"fmt"
	"math"
	"math/rand"

	"quicksel/internal/geom"
)

// SnapshotVersion is the current serialization format version. Restore
// rejects snapshots with a different version rather than guessing.
const SnapshotVersion = 1

// maxRngDraws bounds Snapshot.RngDraws at restore time (the fast-forward
// is linear in it). 2^33 draws replay in tens of seconds worst case; real
// models stay orders of magnitude below.
const maxRngDraws = 1 << 33

// SnapshotBox is the serialized form of a geom.Box.
type SnapshotBox struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

func boxToSnapshot(b geom.Box) SnapshotBox {
	c := b.Clone()
	return SnapshotBox{Lo: c.Lo, Hi: c.Hi}
}

func (s SnapshotBox) box() geom.Box {
	return geom.Box{Lo: s.Lo, Hi: s.Hi}.Clone()
}

// SnapshotObservation is one serialized training record: the lowered
// predicate box, the observed selectivity, and the workload-aware points
// drawn inside the box at observation time. Persisting the points keeps
// post-restore retraining deterministic: the center pool of §3.3 is rebuilt
// from exactly the same candidates.
type SnapshotObservation struct {
	Lo  []float64 `json:"lo"`
	Hi  []float64 `json:"hi"`
	Sel float64   `json:"sel"`
	// Weight is the coreset weight: how many raw feedback records this one
	// stands for. Omitted when 1 (the uncoalesced default), so snapshots
	// from models without an observation cap are byte-identical to the
	// pre-coreset format; absent means 1 on restore.
	Weight float64     `json:"weight,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
}

// SnapshotConfig mirrors Config with stable JSON names, decoupling the
// serialized format from the Go struct.
type SnapshotConfig struct {
	Dim                int     `json:"dim"`
	SubpopsPerQuery    int     `json:"subpops_per_query"`
	MaxSubpops         int     `json:"max_subpops"`
	FixedSubpops       int     `json:"fixed_subpops,omitempty"`
	PointsPerPredicate int     `json:"points_per_predicate"`
	NearestCenters     int     `json:"nearest_centers"`
	Lambda             float64 `json:"lambda"`
	Seed               int64   `json:"seed"`
	UseIterativeSolver bool    `json:"use_iterative_solver,omitempty"`
	// Workers is a runtime knob, not model state — every worker count trains
	// bit-identically — but it is persisted so a restored model (and the
	// serving daemon's snapshot-clone retraining path) keeps the operator's
	// parallelism cap.
	Workers int `json:"workers,omitempty"`
	// Warm-start and coreset knobs (all zero before envelope v5). The warm
	// factorization itself is not serialized — it is O(m²) floats and
	// cheaper to rebuild than to ship — so a restored model's first retrain
	// is always full.
	WarmStart       bool    `json:"warm_start,omitempty"`
	MaxObservations int     `json:"max_observations,omitempty"`
	MergeThreshold  float64 `json:"merge_threshold,omitempty"`
}

func configToSnapshot(c Config) SnapshotConfig {
	return SnapshotConfig{
		Dim:                c.Dim,
		SubpopsPerQuery:    c.SubpopsPerQuery,
		MaxSubpops:         c.MaxSubpops,
		FixedSubpops:       c.FixedSubpops,
		PointsPerPredicate: c.PointsPerPredicate,
		NearestCenters:     c.NearestCenters,
		Lambda:             c.Lambda,
		Seed:               c.Seed,
		UseIterativeSolver: c.UseIterativeSolver,
		Workers:            c.Workers,
		WarmStart:          c.WarmStart,
		MaxObservations:    c.MaxObservations,
		MergeThreshold:     c.MergeThreshold,
	}
}

func (s SnapshotConfig) config() Config {
	return Config{
		Dim:                s.Dim,
		SubpopsPerQuery:    s.SubpopsPerQuery,
		MaxSubpops:         s.MaxSubpops,
		FixedSubpops:       s.FixedSubpops,
		PointsPerPredicate: s.PointsPerPredicate,
		NearestCenters:     s.NearestCenters,
		Lambda:             s.Lambda,
		Seed:               s.Seed,
		UseIterativeSolver: s.UseIterativeSolver,
		Workers:            s.Workers,
		WarmStart:          s.WarmStart,
		MaxObservations:    s.MaxObservations,
		MergeThreshold:     s.MergeThreshold,
	}
}

// Snapshot is the complete serializable state of a Model: configuration,
// every observation (with its workload-aware points), the trained
// subpopulations and weights, and the PRNG stream position. A restored
// model produces bit-identical estimates without retraining, and — because
// RngDraws fast-forwards the deterministic stream to where the original
// left off — continues observing and retraining bit-identically too, which
// is what lets the write-ahead log replay a snapshot-plus-suffix into the
// exact state of an uncrashed run. Snapshots from builds that predate
// RngDraws restore with the stream reset to the seed (their historical
// behaviour).
type Snapshot struct {
	Version       int                   `json:"version"`
	Config        SnapshotConfig        `json:"config"`
	DefaultPoints [][]float64           `json:"default_points"`
	Observations  []SnapshotObservation `json:"observations"`
	Subpops       []SnapshotBox         `json:"subpops,omitempty"`
	Weights       []float64             `json:"weights,omitempty"`
	Trained       bool                  `json:"trained"`
	RngDraws      uint64                `json:"rng_draws,omitempty"`
}

func copyPoints(pts [][]float64) [][]float64 {
	if pts == nil {
		return nil
	}
	out := make([][]float64, len(pts))
	for i, p := range pts {
		q := make([]float64, len(p))
		copy(q, p)
		out[i] = q
	}
	return out
}

// Snapshot exports the model's full state. The returned value shares no
// storage with the model; it can be marshaled to JSON and handed to Restore
// in another process.
func (m *Model) Snapshot() *Snapshot {
	s := &Snapshot{
		Version:       SnapshotVersion,
		Config:        configToSnapshot(m.cfg),
		DefaultPoints: copyPoints(m.defaultPoints),
		Trained:       m.trained,
		RngDraws:      m.src.n,
	}
	s.Observations = make([]SnapshotObservation, len(m.observations))
	for i, o := range m.observations {
		b := boxToSnapshot(o.box)
		so := SnapshotObservation{
			Lo:     b.Lo,
			Hi:     b.Hi,
			Sel:    o.sel,
			Points: copyPoints(o.points),
		}
		if o.weight != 1 {
			so.Weight = o.weight
		}
		s.Observations[i] = so
	}
	if len(m.subpops) > 0 {
		s.Subpops = make([]SnapshotBox, len(m.subpops))
		for i, b := range m.subpops {
			s.Subpops[i] = boxToSnapshot(b)
		}
		s.Weights = make([]float64, len(m.weights))
		copy(s.Weights, m.weights)
	}
	return s
}

// Restore rebuilds a Model from a snapshot, validating the format version,
// dimensions, and internal consistency. The restored model estimates
// identically to the snapshotted one and — with the stream fast-forwarded
// to Snapshot.RngDraws — keeps observing and training bit-identically.
func Restore(s *Snapshot) (*Model, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d (want %d)", s.Version, SnapshotVersion)
	}
	cfg := s.Config.config()
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("core: snapshot Dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Lambda < 0 || math.IsNaN(cfg.Lambda) {
		return nil, fmt.Errorf("core: snapshot has invalid Lambda %g", cfg.Lambda)
	}
	if cfg.FixedSubpops < 0 || cfg.SubpopsPerQuery < 0 || cfg.MaxSubpops < 0 ||
		cfg.PointsPerPredicate < 0 || cfg.NearestCenters < 0 || cfg.Workers < 0 ||
		cfg.MaxObservations < 0 {
		return nil, fmt.Errorf("core: snapshot has negative configuration value")
	}
	if cfg.MergeThreshold < 0 || cfg.MergeThreshold > 1 || math.IsNaN(cfg.MergeThreshold) {
		return nil, fmt.Errorf("core: snapshot MergeThreshold %g outside [0,1]", cfg.MergeThreshold)
	}
	if len(s.Weights) != len(s.Subpops) {
		return nil, fmt.Errorf("core: snapshot has %d weights for %d subpopulations",
			len(s.Weights), len(s.Subpops))
	}
	// Fast-forwarding is linear in RngDraws, so bound it: a legitimate
	// model draws ~PointsPerPredicate×Dim per observation plus one shuffle
	// per training run — even years of heavy traffic stay far below this —
	// while a corrupt or hostile value (the field is the one uint64 no
	// other validation constrains) must not hang Restore.
	if s.RngDraws > maxRngDraws {
		return nil, fmt.Errorf("core: snapshot rng_draws %d exceeds the %d bound (corrupt snapshot?)", s.RngDraws, uint64(maxRngDraws))
	}
	src := &countingSource{src: rand.NewSource(cfg.Seed)}
	for i := uint64(0); i < s.RngDraws; i++ {
		src.src.Int63() // fast-forward without inflating the count
	}
	src.n = s.RngDraws
	m := &Model{
		cfg:  cfg.withDefaults(),
		rng:  rand.New(src),
		src:  src,
		unit: geom.Unit(cfg.Dim),
		qlo:  make([]float64, cfg.Dim),
		qhi:  make([]float64, cfg.Dim),
	}
	checkPoint := func(p []float64, what string) error {
		if len(p) != cfg.Dim {
			return fmt.Errorf("core: snapshot %s point has dim %d, model has %d", what, len(p), cfg.Dim)
		}
		for _, v := range p {
			if math.IsNaN(v) {
				return fmt.Errorf("core: snapshot %s point has NaN coordinate", what)
			}
		}
		return nil
	}
	for _, p := range s.DefaultPoints {
		if err := checkPoint(p, "default"); err != nil {
			return nil, err
		}
	}
	m.defaultPoints = copyPoints(s.DefaultPoints)
	m.observations = make([]observation, len(s.Observations))
	for i, o := range s.Observations {
		box := SnapshotBox{Lo: o.Lo, Hi: o.Hi}.box()
		if box.Dim() != cfg.Dim {
			return nil, fmt.Errorf("core: snapshot observation %d has dim %d, model has %d", i, box.Dim(), cfg.Dim)
		}
		if err := box.Validate(); err != nil {
			return nil, fmt.Errorf("core: snapshot observation %d: %w", i, err)
		}
		if math.IsNaN(o.Sel) {
			return nil, fmt.Errorf("core: snapshot observation %d has NaN selectivity", i)
		}
		sel := o.Sel
		if sel < 0 {
			sel = 0
		}
		if sel > 1 {
			sel = 1
		}
		for _, p := range o.Points {
			if err := checkPoint(p, fmt.Sprintf("observation %d", i)); err != nil {
				return nil, err
			}
		}
		weight := o.Weight
		if weight == 0 {
			weight = 1 // pre-coreset snapshots omit the field
		}
		if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
			return nil, fmt.Errorf("core: snapshot observation %d has invalid weight %g", i, o.Weight)
		}
		m.observations[i] = observation{
			box:    box.Clip(m.unit),
			sel:    sel,
			weight: weight,
			points: copyPoints(o.Points),
		}
	}
	if len(s.Subpops) > 0 {
		m.subpops = make([]geom.Box, len(s.Subpops))
		for i, sb := range s.Subpops {
			box := sb.box()
			if box.Dim() != cfg.Dim {
				return nil, fmt.Errorf("core: snapshot subpopulation %d has dim %d, model has %d", i, box.Dim(), cfg.Dim)
			}
			if err := box.Validate(); err != nil {
				return nil, fmt.Errorf("core: snapshot subpopulation %d: %w", i, err)
			}
			if box.Volume() == 0 {
				return nil, fmt.Errorf("core: snapshot subpopulation %d has zero volume", i)
			}
			m.subpops[i] = box
		}
		m.weights = make([]float64, len(s.Weights))
		for i, w := range s.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("core: snapshot weight %d is not finite", i)
			}
			m.weights[i] = w
		}
	}
	m.trained = s.Trained
	// Rebuild the compiled serving form so a restored model estimates on the
	// same allocation-free fast path as a freshly trained one.
	if m.trained && len(m.subpops) > 0 {
		m.compiled = compile(m.subpops, m.weights)
	}
	return m, nil
}
