// Package core implements QuickSel's selectivity-learning model: a uniform
// mixture model (UMM) over hyperrectangular subpopulations, trained by the
// min-difference-from-uniform quadratic program of §4 and queried by the
// closed-form estimator of §3.2.
//
// All geometry is in the normalized unit cube [0,1)^d; callers lower raw
// predicates through internal/predicate first. The model is deliberately
// small-surface: Observe records a (box, selectivity) pair, Train fits the
// subpopulation weights, Estimate evaluates a new box.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"quicksel/internal/geom"
	"quicksel/internal/linalg"
	"quicksel/internal/par"
	"quicksel/internal/qp"
)

// Defaults from the paper.
const (
	// DefaultSubpopsPerQuery scales the number of subpopulations with the
	// number of observed queries: m = min(4·n, DefaultMaxSubpops) (§3.3).
	DefaultSubpopsPerQuery = 4
	// DefaultMaxSubpops caps the model size (§3.3, footnote 9).
	DefaultMaxSubpops = 4000
	// DefaultPointsPerPredicate is the number of workload-aware points
	// generated inside each observed predicate ("QuickSel limits the number
	// to 10 since generating more than 10 points did not improve accuracy").
	DefaultPointsPerPredicate = 10
	// DefaultNearestCenters sizes each subpopulation box by the average
	// distance to this many closest centers (§3.3 step 3).
	DefaultNearestCenters = 10
	// DefaultMergeThreshold is the Jaccard overlap above which the
	// observation coreset merges two feedback records when MaxObservations
	// caps the history. The mixture is tolerant of collapsing near-duplicate
	// boxes: at 0.9 overlap the merged box differs from either original by
	// under 10% of their common volume.
	DefaultMergeThreshold = 0.9
)

// Config tunes the model. The zero value of every field selects the paper's
// default.
type Config struct {
	Dim                int     // dimensionality of the normalized domain (required)
	SubpopsPerQuery    int     // m = SubpopsPerQuery·n, before capping
	MaxSubpops         int     // hard cap on m
	FixedSubpops       int     // if >0, m is fixed at this value (Fig 7c mode)
	PointsPerPredicate int     // workload-aware points per observed query
	NearestCenters     int     // neighbours used to size each subpopulation
	Lambda             float64 // penalty weight of Problem 3
	Seed               int64   // PRNG seed; same seed + same stream ⇒ same model
	// UseIterativeSolver switches training to the projected-gradient QP of
	// internal/qp, standing in for the "Standard QP" baseline in Figure 6
	// and the solver ablation. Off by default (analytic solve).
	UseIterativeSolver bool
	// Workers bounds the goroutines used by Train's parallel kernels
	// (Q-matrix assembly, the Gram product, the blocked Cholesky):
	// 0 = GOMAXPROCS, 1 = sequential. Every worker count produces
	// bit-identical subpopulation weights; the knob trades cores for wall
	// clock only.
	Workers int
	// WarmStart keeps the analytic solver's Cholesky factorization (and its
	// ridge) between training runs. While the subpopulation set is frozen —
	// at the MaxSubpops cap or under FixedSubpops — a small feedback batch
	// retrains by rank-1 updates in O(batch·m²) instead of refactoring in
	// O(m³); larger batches and any change to the subpopulation budget fall
	// back to the full blocked factorization. Warm retrains match full
	// retrains to solver rounding, not bit-for-bit. Ignored by the
	// iterative solver.
	WarmStart bool
	// MaxObservations caps the retained feedback history with the coreset
	// merge/evict pass: an incoming observation whose box overlaps a
	// retained one above MergeThreshold (Jaccard) merges into it
	// (weighted-average corners and selectivity, summed weight); otherwise
	// the minimum-weight record is evicted to make room. 0 keeps the full
	// history (paper behaviour).
	MaxObservations int
	// MergeThreshold is the Jaccard overlap in (0,1] above which the
	// coreset merges two observations. 0 selects DefaultMergeThreshold.
	// Only meaningful when MaxObservations > 0.
	MergeThreshold float64
}

func (c Config) withDefaults() Config {
	if c.SubpopsPerQuery == 0 {
		c.SubpopsPerQuery = DefaultSubpopsPerQuery
	}
	if c.MaxSubpops == 0 {
		c.MaxSubpops = DefaultMaxSubpops
	}
	if c.PointsPerPredicate == 0 {
		c.PointsPerPredicate = DefaultPointsPerPredicate
	}
	if c.NearestCenters == 0 {
		c.NearestCenters = DefaultNearestCenters
	}
	if c.Lambda == 0 {
		c.Lambda = qp.DefaultLambda
	}
	if c.MaxObservations > 0 && c.MergeThreshold == 0 {
		c.MergeThreshold = DefaultMergeThreshold
	}
	return c
}

// observation is one training record (P_i, s_i), with its pre-generated
// workload-aware points (§3.3 step 1). weight counts the raw feedback
// records the coreset has collapsed into this one (1 when uncoalesced); the
// QP weighs the record's consistency constraint by it.
type observation struct {
	box    geom.Box
	sel    float64
	weight float64
	points [][]float64
}

// Model is QuickSel's trainable uniform mixture model. It is not safe for
// concurrent mutation; wrap with the public quicksel.Estimator for a
// synchronized facade.
type Model struct {
	cfg  Config
	rng  *rand.Rand
	src  *countingSource // the stream behind rng; its count makes snapshots resume the PRNG exactly
	unit geom.Box

	// defaultPoints are the workload-aware points of the default query
	// (P0, 1) over the whole domain (§2.2: "we can conceptually consider a
	// default query (P0, 1)"). Including them in the center pool guarantees
	// some subpopulations cover regions no predicate has touched, so the
	// normalization constraint Σw = 1 never conflicts with localized
	// observations.
	defaultPoints [][]float64

	observations []observation

	// Trained state.
	subpops []geom.Box
	weights []float64
	trained bool

	// compiled is the immutable serving form of the trained state (zero
	// weights pruned, weights pre-divided by volume, bounds in SoA arrays);
	// nil when untrained, uniform, or all-zero-weight.
	compiled *compiledModel

	// qlo/qhi are reusable clipped-query corners so Estimate allocates
	// nothing. The Model is single-goroutine by contract (the public
	// Estimator's mutex serializes access), so one scratch pair suffices.
	qlo, qhi []float64

	// Diagnostics for the experiment drivers.
	lastIters     int    // iterations of the iterative solver (0 for analytic)
	lastTrainMode string // TrainModeFull or TrainModeIncremental; "" before first Train

	// Warm-start state (Config.WarmStart): the solver factorization of the
	// last full train, the subpopulation SoA + reciprocal volumes needed to
	// rebuild constraint rows, the count of observations already folded into
	// the factorization (a prefix of m.observations), and the pending
	// remove/add edits the coreset recorded against that prefix. All nil/0
	// when warm-start is off or no full train has happened; snapshots do not
	// carry this state, so a restored model's first retrain is full.
	warm       *qp.WarmState
	warmSet    *geom.BoxSet
	warmInvVol []float64
	warmObs    int
	warmDeltas []warmDelta
}

// countingSource wraps a rand.Source and counts Int63 draws. The count is
// the model's exact position in its deterministic pseudo-random stream, so
// a snapshot can record it and Restore can fast-forward a fresh source to
// the same position: random draws made after a restore are bit-identical
// to the draws the original model would have made had it kept running.
// Wrapping is transparent — the draw values themselves are unchanged.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// New returns an empty model over [0,1)^Dim.
func New(cfg Config) (*Model, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("core: Dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("core: negative Lambda %g", cfg.Lambda)
	}
	if cfg.FixedSubpops < 0 || cfg.SubpopsPerQuery < 0 || cfg.MaxSubpops < 0 ||
		cfg.PointsPerPredicate < 0 || cfg.NearestCenters < 0 || cfg.Workers < 0 ||
		cfg.MaxObservations < 0 {
		return nil, errors.New("core: negative configuration value")
	}
	if cfg.MergeThreshold < 0 || cfg.MergeThreshold > 1 || math.IsNaN(cfg.MergeThreshold) {
		return nil, fmt.Errorf("core: MergeThreshold %g outside [0,1]", cfg.MergeThreshold)
	}
	c := cfg.withDefaults()
	src := &countingSource{src: rand.NewSource(c.Seed)}
	m := &Model{
		cfg:  c,
		rng:  rand.New(src),
		src:  src,
		unit: geom.Unit(c.Dim),
		qlo:  make([]float64, c.Dim),
		qhi:  make([]float64, c.Dim),
	}
	m.defaultPoints = make([][]float64, c.PointsPerPredicate)
	for i := range m.defaultPoints {
		p := make([]float64, c.Dim)
		for d := range p {
			p[d] = m.rng.Float64()
		}
		m.defaultPoints[i] = p
	}
	return m, nil
}

// Dim returns the model's dimensionality.
func (m *Model) Dim() int { return m.cfg.Dim }

// NumObserved returns the number of recorded training queries.
func (m *Model) NumObserved() int { return len(m.observations) }

// NeedsTraining reports whether observations have arrived since the last
// training run, i.e. whether the next Estimate would pay a lazy refit.
func (m *Model) NeedsTraining() bool { return !m.trained && len(m.observations) > 0 }

// ParamCount returns the number of model parameters (subpopulation
// weights) of the last trained model; 0 before training.
func (m *Model) ParamCount() int { return len(m.weights) }

// Weights returns a copy of the trained subpopulation weights.
func (m *Model) Weights() []float64 {
	out := make([]float64, len(m.weights))
	copy(out, m.weights)
	return out
}

// Subpopulations returns a copy of the trained subpopulation boxes.
func (m *Model) Subpopulations() []geom.Box {
	out := make([]geom.Box, len(m.subpops))
	for i, b := range m.subpops {
		out[i] = b.Clone()
	}
	return out
}

// SolverIterations reports the iterative solver's iteration count of the
// last Train call (0 when the analytic path was used).
func (m *Model) SolverIterations() int { return m.lastIters }

// Observe records one (predicate box, true selectivity) pair in normalized
// coordinates and invalidates the trained state. Selectivities are clamped
// to [0,1]; an invalid box is rejected.
func (m *Model) Observe(box geom.Box, sel float64) error {
	if box.Dim() != m.cfg.Dim {
		return fmt.Errorf("core: observed box has dim %d, model has %d", box.Dim(), m.cfg.Dim)
	}
	if err := box.Validate(); err != nil {
		return fmt.Errorf("core: observed box: %w", err)
	}
	if math.IsNaN(sel) {
		return errors.New("core: NaN selectivity")
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	b := box.Clip(m.unit)
	obs := observation{box: b, sel: sel, weight: 1}
	// Workload-aware points (§3.3 step 1): random points inside the
	// predicate box, drawn once at observation time for determinism.
	if !b.IsEmpty() {
		obs.points = make([][]float64, m.cfg.PointsPerPredicate)
		for i := range obs.points {
			p := make([]float64, m.cfg.Dim)
			for d := 0; d < m.cfg.Dim; d++ {
				p[d] = b.Lo[d] + m.rng.Float64()*(b.Hi[d]-b.Lo[d])
			}
			obs.points[i] = p
		}
	}
	if m.cfg.MaxObservations > 0 && m.coresetAbsorb(obs) {
		m.trained = false
		return nil
	}
	m.observations = append(m.observations, obs)
	m.trained = false
	return nil
}

// targetSubpops returns the m of §3.3 for the current observation count.
func (m *Model) targetSubpops() int {
	if m.cfg.FixedSubpops > 0 {
		return m.cfg.FixedSubpops
	}
	t := m.cfg.SubpopsPerQuery * len(m.observations)
	if t > m.cfg.MaxSubpops {
		t = m.cfg.MaxSubpops
	}
	return t
}

// Train fits the subpopulation weights to the observed workload. When
// warm-start applies (Config.WarmStart, frozen subpopulation set, small
// pending batch) it re-solves from the kept factorization in O(batch·m²);
// otherwise it regenerates the subpopulations and solves the QP of Problem 3
// from scratch. Training with zero observations resets the model to the
// uniform prior.
func (m *Model) Train() error {
	if m.warmEligible() {
		if err := m.trainIncremental(); err == nil {
			return nil
		}
		// Any incremental failure (a downdate that lost definiteness, a
		// non-finite solve) invalidates the warm state; the full path below
		// rebuilds everything from the observations, which remain intact.
		m.clearWarm()
	}
	return m.trainFull()
}

// trainFull is the cold path: regenerate subpopulations, assemble, solve.
func (m *Model) trainFull() error {
	n := len(m.observations)
	if n == 0 {
		m.subpops, m.weights, m.compiled = nil, nil, nil
		m.trained = true
		m.lastIters = 0
		m.lastTrainMode = TrainModeFull
		m.clearWarm()
		return nil
	}

	centers := m.sampleCenters(m.targetSubpops())
	if len(centers) == 0 {
		// All observed predicates were empty boxes; fall back to uniform.
		m.subpops, m.weights, m.compiled = nil, nil, nil
		m.trained = true
		m.lastIters = 0
		m.lastTrainMode = TrainModeFull
		m.clearWarm()
		return nil
	}
	m.subpops = m.sizeSubpopulations(centers)

	q, a, s := m.assemble()
	prob := &qp.Problem{Q: q, A: a, S: s, Lambda: m.cfg.Lambda, Workers: m.cfg.Workers}
	switch {
	case m.cfg.UseIterativeSolver:
		res, err := qp.SolveIterative(prob, qp.IterativeOptions{Project: true})
		if err != nil {
			return fmt.Errorf("core: iterative training: %w", err)
		}
		m.weights = res.W
		m.lastIters = res.Iters
		m.clearWarm()
	case m.cfg.WarmStart:
		// Same solve as qp.SolveAnalytic (bit-identical weights), but keep
		// the factorization for the next retrain.
		w, ws, err := qp.SolveAnalyticWarm(prob)
		if err != nil {
			return fmt.Errorf("core: analytic training: %w", err)
		}
		m.weights = w
		m.lastIters = 0
		m.setWarm(ws)
	default:
		w, err := qp.SolveAnalytic(prob)
		if err != nil {
			return fmt.Errorf("core: analytic training: %w", err)
		}
		m.weights = w
		m.lastIters = 0
	}
	m.compiled = compile(m.subpops, m.weights)
	m.trained = true
	m.lastTrainMode = TrainModeFull
	return nil
}

// sampleCenters pools the workload-aware points of all observations —
// including the default query's domain-wide points — and subsamples target
// of them without replacement (§3.3 step 2).
func (m *Model) sampleCenters(target int) [][]float64 {
	var pool [][]float64
	pool = append(pool, m.defaultPoints...)
	for _, o := range m.observations {
		pool = append(pool, o.points...)
	}
	if len(pool) <= target {
		return pool
	}
	// Partial Fisher-Yates: the first target entries are a uniform sample.
	for i := 0; i < target; i++ {
		j := i + m.rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:target]
}

// sizeSubpopulations builds one box per center, sized by the average
// distance to the NearestCenters closest other centers (§3.3 step 3) so
// neighbouring subpopulations slightly overlap.
func (m *Model) sizeSubpopulations(centers [][]float64) []geom.Box {
	radii := centerRadii(centers, m.cfg.NearestCenters)
	boxes := make([]geom.Box, len(centers))
	for i, c := range centers {
		hw := make([]float64, m.cfg.Dim)
		for d := range hw {
			hw[d] = radii[i]
		}
		boxes[i] = geom.CenteredBox(c, hw, m.unit)
	}
	return boxes
}

// assemble forms the QP data of Theorem 1. Row 0 of A is the default query
// (P0, 1) over the whole domain, guaranteeing Σ w ≈ 1; rows 1..n are the
// observed queries.
//
// This is the O(m²·d) hot loop of training. The subpopulations are packed
// into a flat SoA BoxSet once, and rows of Q and A are computed in parallel:
// every matrix entry is an independent product, and each worker chunk writes
// disjoint rows, so the assembled matrices are bit-identical for every
// worker count.
func (m *Model) assemble() (q, a *linalg.Matrix, s []float64) {
	set := geom.BoxSetOf(m.subpops)
	mm := set.Len()
	workers := par.Workers(m.cfg.Workers)
	invVol := make([]float64, mm)
	for i := range invVol {
		invVol[i] = 1 / set.Volume(i)
	}
	q = linalg.NewMatrix(mm, mm)
	par.For(workers, mm, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := q.Data[i*mm:]
			row[i] = invVol[i]
			for j := i + 1; j < mm; j++ {
				row[j] = set.IntersectionVolume(i, j) * invVol[i] * invVol[j]
			}
		}
	})
	// Mirror the strict lower triangle; chunks write disjoint columns.
	par.For(workers, mm, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < mm; j++ {
				q.Data[j*mm+i] = q.Data[i*mm+j]
			}
		}
	})
	n := len(m.observations)
	a = linalg.NewMatrix(n+1, mm)
	s = make([]float64, n+1)
	s[0] = 1
	row0 := a.Row(0)
	for j := range row0 {
		row0[j] = 1 // subpopulations live inside B0, so |B0∩Gj|/|Gj| = 1
	}
	par.For(workers, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o := &m.observations[i]
			s[i+1] = o.sel
			row := a.Row(i + 1)
			for j := 0; j < mm; j++ {
				row[j] = set.CornersIntersectionVolume(j, o.box.Lo, o.box.Hi) * invVol[j]
			}
			// A coreset-merged record stands for weight raw observations;
			// scaling its row and selectivity by √weight makes the penalty
			// term count it weight times (weighted least squares). The
			// weight==1 case skips the multiply so uncoalesced models keep
			// their historical bit-exact weights.
			if o.weight != 1 {
				root := math.Sqrt(o.weight)
				for j := range row {
					row[j] *= root
				}
				s[i+1] = root * o.sel
			}
		}
	})
	return q, a, s
}

// ensureTrained trains lazily so Estimate can be called right after Observe.
func (m *Model) ensureTrained() error {
	if m.trained {
		return nil
	}
	return m.Train()
}

// Estimate returns the model's selectivity estimate for a normalized box,
// clamped to [0,1]. With no trained subpopulations the model is the uniform
// prior, whose estimate is the box volume (|B|/|B0| with |B0| = 1).
//
// The hot path is allocation-free: the query box is clipped into the
// model's reusable scratch corners and evaluated against the compiled
// (pruned, pre-divided, SoA) form of the trained mixture.
func (m *Model) Estimate(box geom.Box) (float64, error) {
	if box.Dim() != m.cfg.Dim {
		return 0, fmt.Errorf("core: query box has dim %d, model has %d", box.Dim(), m.cfg.Dim)
	}
	if err := m.ensureTrained(); err != nil {
		return 0, err
	}
	// Clip into the unit cube without the two per-call slice allocations.
	d := m.cfg.Dim
	box.ClipInto(m.unit, m.qlo, m.qhi)
	if len(m.subpops) == 0 {
		// Uniform prior: the estimate is the clipped box volume.
		v := 1.0
		for k := 0; k < d; k++ {
			side := m.qhi[k] - m.qlo[k]
			if side <= 0 {
				return 0, nil
			}
			v *= side
		}
		return v, nil
	}
	var est float64
	if m.compiled != nil {
		est = m.compiled.estimate(m.qlo, m.qhi)
	}
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

// EstimateUnion estimates the selectivity of a union of pairwise-disjoint
// boxes (the lowered form of predicates with disjunctions/negations); by
// disjointness the estimates are additive.
func (m *Model) EstimateUnion(boxes []geom.Box) (float64, error) {
	var est float64
	for _, b := range boxes {
		e, err := m.Estimate(b)
		if err != nil {
			return 0, err
		}
		est += e
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}
