package core

import (
	"fmt"

	"quicksel/internal/geom"
	"quicksel/internal/qp"
)

// TrainFrozenForTest re-solves the QP over the current observations with the
// current subpopulations — no resampling, no warm state — via the cold
// analytic path. It is the reference the warm-vs-cold property tests compare
// against: an incremental retrain must reproduce this solve (same frozen
// subpopulations, same history) to solver rounding.
func (m *Model) TrainFrozenForTest() ([]float64, error) {
	if len(m.subpops) == 0 {
		return nil, fmt.Errorf("core: no subpopulations to freeze")
	}
	q, a, s := m.assemble()
	return qp.SolveAnalytic(&qp.Problem{Q: q, A: a, S: s, Lambda: m.cfg.Lambda, Workers: m.cfg.Workers})
}

// CorruptWarmForTest queues a downdate of a heavy row that was never part of
// the system, so the next incremental train fails mid-flight and must fall
// back to the full path.
func (m *Model) CorruptWarmForTest() {
	m.warmDeltas = append(m.warmDeltas, warmDelta{box: geom.Unit(m.cfg.Dim), sel: 0.5, weight: 1e6})
}

// WarmStateForTest reports whether a warm factorization is currently held.
func (m *Model) WarmStateForTest() bool { return m.warm != nil }

// ObservationWeightsForTest returns the coreset weights of the retained
// history, in order.
func (m *Model) ObservationWeightsForTest() []float64 {
	out := make([]float64, len(m.observations))
	for i, o := range m.observations {
		out[i] = o.weight
	}
	return out
}
