package sthole

import (
	"fmt"
	"math"

	"quicksel/internal/geom"
)

// SnapshotBucket is the serialized form of one bucket of the STHoles tree:
// its box, the tuple mass of its own region, and its nested holes.
type SnapshotBucket struct {
	Lo       []float64        `json:"lo"`
	Hi       []float64        `json:"hi"`
	Freq     float64          `json:"freq"`
	Children []SnapshotBucket `json:"children,omitempty"`
}

// Snapshot is the complete serializable state of a Histogram. A restored
// histogram produces bit-identical estimates: the whole model is the bucket
// tree, and the tree is persisted exactly (STHoles uses no randomness).
type Snapshot struct {
	Dim         int            `json:"dim"`
	MaxBuckets  int            `json:"max_buckets"`
	NumObserved int            `json:"num_observed"`
	Root        SnapshotBucket `json:"root"`
}

func bucketToSnapshot(b *bucket) SnapshotBucket {
	c := b.box.Clone()
	out := SnapshotBucket{Lo: c.Lo, Hi: c.Hi, Freq: b.freq}
	if len(b.children) > 0 {
		out.Children = make([]SnapshotBucket, len(b.children))
		for i, ch := range b.children {
			out.Children[i] = bucketToSnapshot(ch)
		}
	}
	return out
}

// Snapshot exports the histogram's full state. The returned value shares no
// storage with the histogram and can be marshaled to JSON.
func (h *Histogram) Snapshot() *Snapshot {
	return &Snapshot{
		Dim:         h.cfg.Dim,
		MaxBuckets:  h.cfg.MaxBuckets,
		NumObserved: h.nObs,
		Root:        bucketToSnapshot(h.root),
	}
}

func bucketFromSnapshot(s SnapshotBucket, dim int) (*bucket, int, error) {
	box := geom.Box{Lo: s.Lo, Hi: s.Hi}.Clone()
	if box.Dim() != dim {
		return nil, 0, fmt.Errorf("sthole: snapshot bucket has dim %d, want %d", box.Dim(), dim)
	}
	if err := box.Validate(); err != nil {
		return nil, 0, fmt.Errorf("sthole: snapshot bucket: %w", err)
	}
	if math.IsNaN(s.Freq) || math.IsInf(s.Freq, 0) || s.Freq < 0 {
		return nil, 0, fmt.Errorf("sthole: snapshot bucket has frequency %g", s.Freq)
	}
	b := &bucket{box: box, freq: s.Freq}
	count := 1
	for _, cs := range s.Children {
		child, n, err := bucketFromSnapshot(cs, dim)
		if err != nil {
			return nil, 0, err
		}
		if !box.ContainsBox(child.box) {
			return nil, 0, fmt.Errorf("sthole: snapshot child bucket %v escapes its parent %v", child.box, box)
		}
		b.children = append(b.children, child)
		count += n
	}
	return b, count, nil
}

// Restore rebuilds a Histogram from a snapshot, validating dimensions, box
// nesting, and frequencies. The restored histogram estimates identically to
// the snapshotted one and keeps learning from further observations.
func Restore(s *Snapshot) (*Histogram, error) {
	if s == nil {
		return nil, fmt.Errorf("sthole: nil snapshot")
	}
	if s.Dim < 1 {
		return nil, fmt.Errorf("sthole: snapshot Dim must be >= 1, got %d", s.Dim)
	}
	maxBuckets := s.MaxBuckets
	if maxBuckets == 0 {
		maxBuckets = DefaultMaxBuckets
	}
	if maxBuckets < 1 {
		return nil, fmt.Errorf("sthole: snapshot MaxBuckets must be positive, got %d", s.MaxBuckets)
	}
	if s.NumObserved < 0 {
		return nil, fmt.Errorf("sthole: snapshot NumObserved is negative")
	}
	root, count, err := bucketFromSnapshot(s.Root, s.Dim)
	if err != nil {
		return nil, err
	}
	return &Histogram{
		cfg:   Config{Dim: s.Dim, MaxBuckets: maxBuckets},
		unit:  geom.Unit(s.Dim),
		root:  root,
		count: count,
		nObs:  s.NumObserved,
	}, nil
}
