package sthole

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quicksel/internal/geom"
)

func mustHist(t *testing.T, cfg Config) *Histogram {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Error("expected error for Dim 0")
	}
	if _, err := New(Config{Dim: 2, MaxBuckets: -1}); err == nil {
		t.Error("expected error for negative MaxBuckets")
	}
}

func TestInitialUniform(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	got, err := h.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.25, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("initial estimate = %g, want 0.25", got)
	}
	if h.NumBuckets() != 1 {
		t.Errorf("NumBuckets = %d, want 1", h.NumBuckets())
	}
}

func TestDrillLearnsObservation(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	b := geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5})
	if err := h.Observe(b, 0.8); err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 2 {
		t.Fatalf("NumBuckets = %d, want 2 after one drill", h.NumBuckets())
	}
	got, err := h.Estimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 0.02 {
		t.Errorf("estimate of observed box = %g, want ≈0.8", got)
	}
}

func TestNestedDrills(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	outer := geom.NewBox([]float64{0, 0}, []float64{0.6, 0.6})
	inner := geom.NewBox([]float64{0.1, 0.1}, []float64{0.3, 0.3})
	if err := h.Observe(outer, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := h.Observe(inner, 0.5); err != nil {
		t.Fatal(err)
	}
	gotInner, err := h.Estimate(inner)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotInner-0.5) > 0.05 {
		t.Errorf("inner estimate = %g, want ≈0.5", gotInner)
	}
}

func TestMergeBoundsBucketCount(t *testing.T) {
	h := mustHist(t, Config{Dim: 2, MaxBuckets: 10})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		lo := []float64{rng.Float64() * 0.7, rng.Float64() * 0.7}
		box := geom.NewBox(lo, []float64{lo[0] + 0.2, lo[1] + 0.2}).Clip(geom.Unit(2))
		if err := h.Observe(box, rng.Float64()*0.5); err != nil {
			t.Fatal(err)
		}
		if h.NumBuckets() > 10 {
			t.Fatalf("bucket budget exceeded: %d > 10 after query %d", h.NumBuckets(), i)
		}
	}
	if h.NumObserved() != 100 {
		t.Errorf("NumObserved = %d", h.NumObserved())
	}
}

func TestObserveValidation(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	if err := h.Observe(geom.Unit(3), 0.5); err == nil {
		t.Error("expected dim mismatch")
	}
	if err := h.Observe(geom.Box{Lo: []float64{1, 1}, Hi: []float64{0, 0}}, 0.5); err == nil {
		t.Error("expected invalid box")
	}
	if err := h.Observe(geom.Unit(2), math.NaN()); err == nil {
		t.Error("expected NaN error")
	}
	empty := geom.NewBox([]float64{0.3, 0.3}, []float64{0.3, 0.3})
	if err := h.Observe(empty, 0.2); err != nil {
		t.Fatal(err)
	}
	if h.NumObserved() != 0 {
		t.Error("empty box should be skipped")
	}
}

func TestEstimateDimMismatch(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	if _, err := h.Estimate(geom.Unit(3)); err == nil {
		t.Error("expected dim mismatch")
	}
}

// Property: estimates stay in [0,1] and the tree structure stays sound
// (children nested in parents, mass non-negative) under random workloads.
func TestPropertyTreeSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := New(Config{Dim: 2, MaxBuckets: 40})
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			lo := []float64{rng.Float64() * 0.8, rng.Float64() * 0.8}
			box := geom.NewBox(lo, []float64{lo[0] + rng.Float64()*0.3, lo[1] + rng.Float64()*0.3}).Clip(geom.Unit(2))
			if err := h.Observe(box, rng.Float64()); err != nil {
				return false
			}
		}
		sound := true
		var walk func(n *bucket)
		walk = func(n *bucket) {
			if n.freq < 0 || math.IsNaN(n.freq) {
				sound = false
			}
			for _, c := range n.children {
				if !n.box.ContainsBox(c.box) {
					sound = false
				}
				walk(c)
			}
		}
		walk(h.root)
		if !sound {
			return false
		}
		for k := 0; k < 20; k++ {
			lo := []float64{rng.Float64(), rng.Float64()}
			q := geom.NewBox(lo, []float64{lo[0] + rng.Float64(), lo[1] + rng.Float64()}).Clip(geom.Unit(2))
			e, err := h.Estimate(q)
			if err != nil || e < 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTotalMassStaysBounded(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		lo := []float64{rng.Float64() * 0.7, rng.Float64() * 0.7}
		box := geom.NewBox(lo, []float64{lo[0] + 0.25, lo[1] + 0.25}).Clip(geom.Unit(2))
		if err := h.Observe(box, rng.Float64()*0.4); err != nil {
			t.Fatal(err)
		}
	}
	mass := h.TotalMass()
	if mass < 0 || mass > 3 || math.IsNaN(mass) {
		t.Errorf("TotalMass = %g drifted outside sane bounds", mass)
	}
}
