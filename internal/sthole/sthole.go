// Package sthole implements an STHoles-style query-driven histogram
// [Bruno, Chaudhuri, Gravano, SIGMOD 2001], the error-feedback baseline of
// the paper's evaluation (§5.1): "creates histogram buckets by partitioning
// existing buckets; the frequency of an existing bucket is distributed
// uniformly among the newly created buckets."
//
// The histogram is a tree of nested buckets. Each bucket owns the region of
// its box not covered by its children ("holes" drilled by later queries)
// and carries the estimated tuple mass of that region. Observing a query
// drills a hole for the query's box in every bucket it partially overlaps,
// assigns the hole the observed mass (apportioned uniformly over the query
// box), and adjusts the parent by error feedback. A parent-child merge step
// bounds the bucket count, which is why STHoles keeps a small parameter
// count in Figure 4 — at the cost of the accuracy loss the paper reports.
//
// Trade-off: the cheapest per-observation update of the repository's
// methods (tree surgery, no fitting step — Train is a no-op) and bounded
// memory, but the lowest accuracy of the query-driven methods, because the
// uniform redistribution of mass into drilled holes discards information
// that QuickSel's mixture fit and ISOMER's max-entropy solve retain.
// quickseld serves it as method "sthole" (internal/estimator).
package sthole

import (
	"errors"
	"fmt"
	"math"

	"quicksel/internal/geom"
)

// DefaultMaxBuckets bounds the tree size; STHoles' merge step keeps the
// histogram within budget.
const DefaultMaxBuckets = 1000

// Config tunes the histogram.
type Config struct {
	Dim        int
	MaxBuckets int // 0 means DefaultMaxBuckets
}

// bucket is one node of the STHoles tree. freq is the estimated fraction of
// all tuples lying in the bucket's own region (box minus children boxes).
type bucket struct {
	box      geom.Box
	freq     float64
	children []*bucket
}

// ownVolume returns the volume of the bucket's own region.
func (b *bucket) ownVolume() float64 {
	v := b.box.Volume()
	for _, c := range b.children {
		v -= c.box.Volume()
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Histogram is an STHoles histogram over the normalized unit cube.
type Histogram struct {
	cfg   Config
	unit  geom.Box
	root  *bucket
	count int
	nObs  int
}

// New returns a histogram initialized with the uniform root bucket.
func New(cfg Config) (*Histogram, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("sthole: Dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.MaxBuckets == 0 {
		cfg.MaxBuckets = DefaultMaxBuckets
	}
	if cfg.MaxBuckets < 1 {
		return nil, fmt.Errorf("sthole: MaxBuckets must be positive, got %d", cfg.MaxBuckets)
	}
	unit := geom.Unit(cfg.Dim)
	return &Histogram{
		cfg:   cfg,
		unit:  unit,
		root:  &bucket{box: unit, freq: 1},
		count: 1,
	}, nil
}

// Dim returns the dimensionality of the histogram's domain.
func (h *Histogram) Dim() int { return h.cfg.Dim }

// NumBuckets returns the current number of buckets in the tree.
func (h *Histogram) NumBuckets() int { return h.count }

// ParamCount returns the number of model parameters (bucket frequencies).
func (h *Histogram) ParamCount() int { return h.count }

// NumObserved returns the number of observed queries.
func (h *Histogram) NumObserved() int { return h.nObs }

// Observe refines the histogram with one (query box, selectivity) pair.
func (h *Histogram) Observe(box geom.Box, sel float64) error {
	if box.Dim() != h.cfg.Dim {
		return fmt.Errorf("sthole: observed box has dim %d, want %d", box.Dim(), h.cfg.Dim)
	}
	if err := box.Validate(); err != nil {
		return fmt.Errorf("sthole: observed box: %w", err)
	}
	if math.IsNaN(sel) {
		return errors.New("sthole: NaN selectivity")
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	b := box.Clip(h.unit)
	if b.IsEmpty() {
		return nil
	}
	h.drill(h.root, b, sel, b.Volume())
	h.nObs++
	for h.count > h.cfg.MaxBuckets {
		if !h.mergeOnce() {
			break
		}
	}
	return nil
}

// drill recursively carves the query box q (observed selectivity sel,
// total volume qVol) into the subtree rooted at n.
func (h *Histogram) drill(n *bucket, q geom.Box, sel, qVol float64) {
	cand, ok := n.box.Intersect(q)
	if !ok {
		return
	}
	// Recurse into children first; holes are drilled bottom-up so each
	// level only handles its own region.
	for _, c := range n.children {
		h.drill(c, q, sel, qVol)
	}
	if cand.Equal(n.box) {
		// The bucket lies entirely inside the query: its own region needs
		// no hole, but error feedback still applies — handled at estimate
		// level by construction (mass stays put).
		return
	}
	// Shrink the candidate so it does not partially cut any child box
	// (STHoles' shrink operation). Children fully inside the candidate are
	// fine: they will be re-parented into the hole.
	cand = h.shrink(n, cand)
	if cand.IsEmpty() {
		return
	}
	// Partition children: those inside the hole move under it.
	var inside, outside []*bucket
	for _, c := range n.children {
		if cand.ContainsBox(c.box) {
			inside = append(inside, c)
		} else {
			outside = append(outside, c)
		}
	}
	holeOwn := cand.Volume()
	for _, c := range inside {
		holeOwn -= c.box.Volume()
	}
	if holeOwn <= 0 {
		return // hole entirely covered by existing children; nothing to learn
	}
	// Observed mass apportioned uniformly over the query box (the paper's
	// "distributed uniformly" rule).
	newMass := sel * holeOwn / qVol
	// Error feedback: remove the parent's previous estimate for the region
	// it is ceding to the hole.
	ownV := n.ownVolume()
	if ownV > 0 {
		ceded := n.freq * holeOwn / ownV
		n.freq -= ceded
		if n.freq < 0 {
			n.freq = 0
		}
	}
	hole := &bucket{box: cand, freq: newMass, children: inside}
	n.children = append(outside, hole)
	h.count++
}

// shrink cuts the candidate hole along axis-aligned planes until no child
// of n partially overlaps it, preferring the cut that preserves the most
// candidate volume at each step.
func (h *Histogram) shrink(n *bucket, cand geom.Box) geom.Box {
	for iter := 0; iter < 64; iter++ {
		var offender *bucket
		for _, c := range n.children {
			if cand.Overlaps(c.box) && !cand.ContainsBox(c.box) {
				offender = c
				break
			}
		}
		if offender == nil {
			return cand
		}
		best := geom.Box{}
		bestVol := -1.0
		for d := 0; d < cand.Dim(); d++ {
			// Cut below the offender.
			if offender.box.Lo[d] > cand.Lo[d] {
				cut := cand.Clone()
				cut.Hi[d] = math.Min(cut.Hi[d], offender.box.Lo[d])
				if v := cut.Volume(); v > bestVol {
					best, bestVol = cut, v
				}
			}
			// Cut above the offender.
			if offender.box.Hi[d] < cand.Hi[d] {
				cut := cand.Clone()
				cut.Lo[d] = math.Max(cut.Lo[d], offender.box.Hi[d])
				if v := cut.Volume(); v > bestVol {
					best, bestVol = cut, v
				}
			}
		}
		if bestVol <= 0 {
			return geom.Box{Lo: make([]float64, cand.Dim()), Hi: make([]float64, cand.Dim())}
		}
		cand = best
	}
	return cand
}

// mergeOnce performs the lowest-penalty parent-child merge; it returns
// false if the tree has no mergeable pair (only the root remains).
func (h *Histogram) mergeOnce() bool {
	type pair struct {
		parent *bucket
		childI int
	}
	var best pair
	bestPenalty := math.Inf(1)
	var walk func(n *bucket)
	walk = func(n *bucket) {
		ownV := n.ownVolume()
		var nDensity float64
		if ownV > 0 {
			nDensity = n.freq / ownV
		}
		for i, c := range n.children {
			cv := c.ownVolume()
			var cDensity float64
			if cv > 0 {
				cDensity = c.freq / cv
			}
			// Penalty: estimated absolute error introduced by flattening the
			// child into the parent (density difference times child volume).
			penalty := math.Abs(cDensity-nDensity) * cv
			if penalty < bestPenalty {
				bestPenalty = penalty
				best = pair{parent: n, childI: i}
			}
			walk(c)
		}
	}
	walk(h.root)
	if best.parent == nil {
		return false
	}
	p, i := best.parent, best.childI
	child := p.children[i]
	p.freq += child.freq
	p.children = append(p.children[:i], p.children[i+1:]...)
	p.children = append(p.children, child.children...)
	h.count--
	return true
}

// Estimate returns the histogram's estimate for a normalized box.
func (h *Histogram) Estimate(box geom.Box) (float64, error) {
	if box.Dim() != h.cfg.Dim {
		return 0, fmt.Errorf("sthole: query box has dim %d, want %d", box.Dim(), h.cfg.Dim)
	}
	q := box.Clip(h.unit)
	est := h.estimate(h.root, q)
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

func (h *Histogram) estimate(n *bucket, q geom.Box) float64 {
	interBox := n.box.IntersectionVolume(q)
	if interBox == 0 {
		return 0
	}
	var est float64
	interOwn := interBox
	for _, c := range n.children {
		interOwn -= c.box.IntersectionVolume(q)
		est += h.estimate(c, q)
	}
	if interOwn > 0 {
		if ownV := n.ownVolume(); ownV > 0 {
			est += n.freq * interOwn / ownV
		}
	}
	return est
}

// TotalMass returns the sum of bucket frequencies (≈1 for a well-calibrated
// histogram; drifts under error feedback, which is the expected behaviour
// of this baseline).
func (h *Histogram) TotalMass() float64 {
	var sum float64
	var walk func(n *bucket)
	walk = func(n *bucket) {
		sum += n.freq
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(h.root)
	return sum
}
