// Package scanhist implements AutoHist, the scan-based baseline of §5.1:
// an equiwidth multidimensional histogram built by scanning the table,
// automatically rebuilt when more than a configurable fraction of the data
// changes (SQL Server's AUTO_UPDATE_STATISTICS rule, 20% by default).
//
// Trade-off: estimation is extremely fast (a product walk over the touched
// grid cells) and the budget is fixed up front, but the equiwidth grid
// assumes uniformity within each cell and its per-dimension resolution
// collapses as dimensionality grows (floor(Buckets^(1/d)) bins per axis) —
// the curse of dimensionality that query-driven methods sidestep by
// spending parameters only where queries land. quickseld serves it as
// method "scanhist" over a synthetic table materialized from the feedback
// stream (internal/estimator).
package scanhist

import (
	"fmt"

	"quicksel/internal/geom"
	"quicksel/internal/table"
)

// DefaultRefreshFraction is SQL Server's auto-update threshold.
const DefaultRefreshFraction = 0.20

// Config tunes the histogram.
type Config struct {
	// Buckets is the total parameter budget; the grid uses
	// floor(Buckets^(1/d)) bins per dimension (at least 1).
	Buckets int
	// RefreshFraction triggers a rebuild when ModifiedFraction exceeds it;
	// 0 means DefaultRefreshFraction.
	RefreshFraction float64
}

// Histogram is an equiwidth d-dimensional grid histogram over the
// normalized unit cube.
type Histogram struct {
	cfg       Config
	tbl       *table.Table
	dim       int
	binsPerD  int
	counts    []float64 // cell densities as fractions of the table
	totalRows int
	rebuilds  int
}

// New builds the histogram with an initial scan of the table.
func New(tbl *table.Table, cfg Config) (*Histogram, error) {
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("scanhist: Buckets must be positive, got %d", cfg.Buckets)
	}
	if cfg.RefreshFraction < 0 || cfg.RefreshFraction > 1 {
		return nil, fmt.Errorf("scanhist: RefreshFraction %g outside [0,1]", cfg.RefreshFraction)
	}
	if cfg.RefreshFraction == 0 {
		cfg.RefreshFraction = DefaultRefreshFraction
	}
	dim := tbl.Schema().Dim()
	bins := intRoot(cfg.Buckets, dim)
	h := &Histogram{cfg: cfg, tbl: tbl, dim: dim, binsPerD: bins}
	h.Rebuild()
	return h, nil
}

// intRoot returns floor(n^(1/d)), at least 1.
func intRoot(n, d int) int {
	if d <= 0 {
		return 1
	}
	b := 1
	for {
		p := 1
		overflow := false
		for i := 0; i < d; i++ {
			p *= b + 1
			if p > n {
				overflow = true
				break
			}
		}
		if overflow {
			break
		}
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// ParamCount returns the number of grid cells.
func (h *Histogram) ParamCount() int { return len(h.counts) }

// Rebuilds returns how many full scans have been performed (1 after New).
func (h *Histogram) Rebuilds() int { return h.rebuilds }

// Rebuild rescans the table, repopulating all cells, and resets the
// table's modification counter.
func (h *Histogram) Rebuild() {
	cells := 1
	for i := 0; i < h.dim; i++ {
		cells *= h.binsPerD
	}
	counts := make([]float64, cells)
	schema := h.tbl.Schema()
	n := 0
	h.tbl.Scan(func(_ int, tuple []float64) {
		idx := 0
		for c := 0; c < h.dim; c++ {
			x := schema.Normalize(c, tuple[c])
			bin := int(x * float64(h.binsPerD))
			if bin >= h.binsPerD {
				bin = h.binsPerD - 1
			}
			idx = idx*h.binsPerD + bin
		}
		counts[idx]++
		n++
	})
	if n > 0 {
		for i := range counts {
			counts[i] /= float64(n)
		}
	}
	h.counts = counts
	h.totalRows = n
	h.rebuilds++
	h.tbl.ResetModified()
}

// MaybeRefresh rebuilds if the table changed beyond the refresh threshold;
// it returns whether a rebuild happened. Callers invoke this on the update
// path (Figure 5's drift loop).
func (h *Histogram) MaybeRefresh() bool {
	if h.tbl.ModifiedFraction() > h.cfg.RefreshFraction {
		h.Rebuild()
		return true
	}
	return false
}

// Estimate returns the histogram estimate for a normalized box, assuming
// uniformity within each grid cell.
func (h *Histogram) Estimate(box geom.Box) (float64, error) {
	if box.Dim() != h.dim {
		return 0, fmt.Errorf("scanhist: query box has dim %d, want %d", box.Dim(), h.dim)
	}
	b := box.Clip(geom.Unit(h.dim))
	if b.IsEmpty() || h.totalRows == 0 {
		return 0, nil
	}
	// Per-dimension overlap fractions with the bins the box touches, then a
	// product walk over the touched sub-grid.
	type span struct {
		lo, hi int       // touched bin range (inclusive)
		frac   []float64 // overlap fraction per touched bin
	}
	spans := make([]span, h.dim)
	w := 1.0 / float64(h.binsPerD)
	for c := 0; c < h.dim; c++ {
		lo := int(b.Lo[c] / w)
		hi := int(b.Hi[c] / w)
		if hi >= h.binsPerD {
			hi = h.binsPerD - 1
		}
		if lo >= h.binsPerD {
			lo = h.binsPerD - 1
		}
		sp := span{lo: lo, hi: hi, frac: make([]float64, hi-lo+1)}
		for bin := lo; bin <= hi; bin++ {
			binLo := float64(bin) * w
			binHi := binLo + w
			ov := minF(b.Hi[c], binHi) - maxF(b.Lo[c], binLo)
			if ov < 0 {
				ov = 0
			}
			sp.frac[bin-lo] = ov / w
		}
		spans[c] = sp
	}
	var est float64
	var walk func(c int, cell int, frac float64)
	walk = func(c, cell int, frac float64) {
		if frac == 0 {
			return
		}
		if c == h.dim {
			est += h.counts[cell] * frac
			return
		}
		sp := spans[c]
		for bin := sp.lo; bin <= sp.hi; bin++ {
			walk(c+1, cell*h.binsPerD+bin, frac*sp.frac[bin-sp.lo])
		}
	}
	walk(0, 0, 1)
	if est > 1 {
		est = 1
	}
	return est, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
