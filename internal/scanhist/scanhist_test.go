package scanhist

import (
	"math"
	"math/rand"
	"testing"

	"quicksel/internal/geom"
	"quicksel/internal/predicate"
	"quicksel/internal/table"
)

func uniformTable(t *testing.T, rows int, seed int64) *table.Table {
	t.Helper()
	s := predicate.MustSchema(
		predicate.Column{Name: "a", Kind: predicate.Real, Min: 0, Max: 1},
		predicate.Column{Name: "b", Kind: predicate.Real, Min: 0, Max: 1},
	)
	tb := table.New(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		if err := tb.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	tb.ResetModified()
	return tb
}

func TestNewValidation(t *testing.T) {
	tb := uniformTable(t, 10, 1)
	if _, err := New(tb, Config{Buckets: 0}); err == nil {
		t.Error("expected error for zero buckets")
	}
	if _, err := New(tb, Config{Buckets: 100, RefreshFraction: 2}); err == nil {
		t.Error("expected error for refresh fraction > 1")
	}
}

func TestIntRoot(t *testing.T) {
	tests := []struct{ n, d, want int }{
		{100, 2, 10},
		{99, 2, 9},
		{1000, 3, 10},
		{1, 2, 1},
		{5, 3, 1},
		{16, 4, 2},
	}
	for _, tt := range tests {
		if got := intRoot(tt.n, tt.d); got != tt.want {
			t.Errorf("intRoot(%d, %d) = %d, want %d", tt.n, tt.d, got, tt.want)
		}
	}
}

func TestUniformDataEstimates(t *testing.T) {
	tb := uniformTable(t, 20000, 2)
	h, err := New(tb, Config{Buckets: 100})
	if err != nil {
		t.Fatal(err)
	}
	if h.ParamCount() != 100 {
		t.Errorf("ParamCount = %d, want 100", h.ParamCount())
	}
	// On uniform data the estimate equals the box volume.
	q := geom.NewBox([]float64{0.1, 0.2}, []float64{0.6, 0.7})
	got, err := h.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("estimate = %g, want ≈0.25", got)
	}
	// Whole domain ≈ 1.
	whole, err := h.Estimate(geom.Unit(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole-1) > 1e-9 {
		t.Errorf("whole-domain estimate = %g, want 1", whole)
	}
}

func TestPartialCellOverlap(t *testing.T) {
	tb := uniformTable(t, 50000, 3)
	h, err := New(tb, Config{Buckets: 16}) // 4×4 grid, cells of width 0.25
	if err != nil {
		t.Fatal(err)
	}
	// A box covering half a cell in each dimension.
	q := geom.NewBox([]float64{0, 0}, []float64{0.125, 0.125})
	got, err := h.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.015625) > 0.005 {
		t.Errorf("partial-cell estimate = %g, want ≈0.0156", got)
	}
}

func TestSkewedDataBeatsNothing(t *testing.T) {
	// All mass in the lower-left quadrant.
	s := predicate.MustSchema(
		predicate.Column{Name: "a", Kind: predicate.Real, Min: 0, Max: 1},
		predicate.Column{Name: "b", Kind: predicate.Real, Min: 0, Max: 1},
	)
	tb := table.New(s)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		if err := tb.Insert([]float64{rng.Float64() * 0.5, rng.Float64() * 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	h, err := New(tb, Config{Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.02 {
		t.Errorf("skewed estimate = %g, want ≈1", got)
	}
	empty, err := h.Estimate(geom.NewBox([]float64{0.5, 0.5}, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if empty > 0.02 {
		t.Errorf("empty-region estimate = %g, want ≈0", empty)
	}
}

func TestAutoRefreshRule(t *testing.T) {
	tb := uniformTable(t, 1000, 5)
	h, err := New(tb, Config{Buckets: 25, RefreshFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if h.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1 after New", h.Rebuilds())
	}
	// Insert 10%: below threshold, no rebuild.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		_ = tb.Insert([]float64{rng.Float64(), rng.Float64()})
	}
	if h.MaybeRefresh() {
		t.Error("10% change must not trigger a rebuild at 20% threshold")
	}
	// Another 15%: above threshold now.
	for i := 0; i < 165; i++ {
		_ = tb.Insert([]float64{rng.Float64(), rng.Float64()})
	}
	if !h.MaybeRefresh() {
		t.Error("24% change must trigger a rebuild")
	}
	if h.Rebuilds() != 2 {
		t.Errorf("Rebuilds = %d, want 2", h.Rebuilds())
	}
}

func TestEmptyTable(t *testing.T) {
	s := predicate.MustSchema(predicate.Column{Name: "a", Kind: predicate.Real, Min: 0, Max: 1})
	tb := table.New(s)
	h, err := New(tb, Config{Buckets: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Estimate(geom.Unit(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty-table estimate = %g, want 0", got)
	}
}

func TestEstimateDimMismatch(t *testing.T) {
	tb := uniformTable(t, 10, 7)
	h, err := New(tb, Config{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Estimate(geom.Unit(3)); err == nil {
		t.Error("expected dim mismatch")
	}
}
