package geom

import (
	"math/rand"
	"testing"
)

func randomBoxes(rng *rand.Rand, n, dim int) []Box {
	boxes := make([]Box, n)
	for i := range boxes {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for d := 0; d < dim; d++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		boxes[i] = Box{Lo: lo, Hi: hi}
	}
	return boxes
}

// BoxSet volumes and intersection volumes must be bit-identical to the Box
// methods on the same corners — training determinism depends on it.
func TestBoxSetMatchesBoxExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{1, 2, 5} {
		boxes := randomBoxes(rng, 40, dim)
		// Mix in degenerate and touching boxes.
		boxes = append(boxes, boxes[0].Clone())
		boxes[len(boxes)-1].Hi[0] = boxes[len(boxes)-1].Lo[0] // collapsed side
		set := BoxSetOf(boxes)
		if set.Len() != len(boxes) || set.Dim() != dim {
			t.Fatalf("dim=%d: Len/Dim = %d/%d, want %d/%d", dim, set.Len(), set.Dim(), len(boxes), dim)
		}
		for i := range boxes {
			if got, want := set.Volume(i), boxes[i].Volume(); got != want {
				t.Fatalf("dim=%d: Volume(%d) = %v, want %v", dim, i, got, want)
			}
			if !set.Box(i).Equal(boxes[i]) {
				t.Fatalf("dim=%d: Box(%d) round-trip mismatch", dim, i)
			}
			for j := range boxes {
				got := set.IntersectionVolume(i, j)
				want := boxes[i].IntersectionVolume(boxes[j])
				if got != want {
					t.Fatalf("dim=%d: IntersectionVolume(%d,%d) = %v, want %v", dim, i, j, got, want)
				}
				got = set.CornersIntersectionVolume(i, boxes[j].Lo, boxes[j].Hi)
				if got != want {
					t.Fatalf("dim=%d: CornersIntersectionVolume(%d,%d) = %v, want %v", dim, i, j, got, want)
				}
			}
		}
	}
}

func TestBoxSetAppendMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong dimension should panic")
		}
	}()
	s := NewBoxSet(2, 1)
	s.Append(Unit(3))
}
