package geom

// This file implements operations on unions of boxes. Query predicates with
// disjunctions and negations lower to unions of boxes (internal/predicate),
// and ISOMER's bucket maintenance needs exact box subtraction so that every
// bucket is fully inside or fully outside each predicate (Appendix B of the
// paper requires 0/1 overlap for iterative scaling).

// Subtract decomposes a \ b into at most 2d disjoint boxes whose union is
// exactly the part of a not covered by b. The decomposition peels one slab
// per dimension: below b, above b, then recurses into the middle. The
// returned boxes are pairwise disjoint and lie inside a.
func Subtract(a, b Box) []Box {
	inter, ok := a.Intersect(b)
	if !ok {
		if a.IsEmpty() {
			return nil
		}
		return []Box{a.Clone()}
	}
	if inter.Equal(a) {
		return nil // a fully covered
	}
	var out []Box
	rest := a.Clone()
	for i := 0; i < a.Dim(); i++ {
		// Slab strictly below the intersection in dimension i.
		if rest.Lo[i] < inter.Lo[i] {
			below := rest.Clone()
			below.Hi[i] = inter.Lo[i]
			if !below.IsEmpty() {
				out = append(out, below)
			}
			rest.Lo[i] = inter.Lo[i]
		}
		// Slab strictly above the intersection in dimension i.
		if rest.Hi[i] > inter.Hi[i] {
			above := rest.Clone()
			above.Lo[i] = inter.Hi[i]
			if !above.IsEmpty() {
				out = append(out, above)
			}
			rest.Hi[i] = inter.Hi[i]
		}
	}
	return out
}

// SubtractAll returns the part of a not covered by any box in bs, as a set
// of disjoint boxes.
func SubtractAll(a Box, bs []Box) []Box {
	remain := []Box{a}
	for _, b := range bs {
		var next []Box
		for _, r := range remain {
			next = append(next, Subtract(r, b)...)
		}
		remain = next
		if len(remain) == 0 {
			break
		}
	}
	return remain
}

// Disjointify converts an arbitrary collection of boxes into a set of
// pairwise-disjoint boxes covering exactly the same region. Boxes are added
// one at a time, keeping only the part not already covered.
func Disjointify(boxes []Box) []Box {
	var out []Box
	for _, b := range boxes {
		if b.IsEmpty() {
			continue
		}
		pieces := []Box{b}
		for _, existing := range out {
			var next []Box
			for _, p := range pieces {
				next = append(next, Subtract(p, existing)...)
			}
			pieces = next
			if len(pieces) == 0 {
				break
			}
		}
		out = append(out, pieces...)
	}
	return out
}

// UnionVolume returns the exact volume of the union of the boxes. It runs in
// O(k² · 2d) for k boxes via incremental disjoint decomposition, which is
// ample for predicate DNF terms (typically a handful of boxes).
func UnionVolume(boxes []Box) float64 {
	var v float64
	for _, b := range Disjointify(boxes) {
		v += b.Volume()
	}
	return v
}

// UnionIntersectionVolume returns |(∪ as) ∩ (∪ bs)| exactly. Used to compute
// intersection sizes between predicates in disjunctive normal form (§2.2:
// "converting Pi ∧ Pj into a disjunctive normal form and then using the
// inclusion-exclusion principle").
func UnionIntersectionVolume(as, bs []Box) float64 {
	var pairwise []Box
	for _, a := range as {
		for _, b := range bs {
			if inter, ok := a.Intersect(b); ok {
				pairwise = append(pairwise, inter)
			}
		}
	}
	return UnionVolume(pairwise)
}

// CoversPoint reports whether any box in the set contains p.
func CoversPoint(boxes []Box, p []float64) bool {
	for _, b := range boxes {
		if b.Contains(p) {
			return true
		}
	}
	return false
}
