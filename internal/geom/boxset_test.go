package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubtractDisjoint(t *testing.T) {
	a := NewBox([]float64{0, 0}, []float64{1, 1})
	b := NewBox([]float64{2, 2}, []float64{3, 3})
	got := Subtract(a, b)
	if len(got) != 1 || !got[0].Equal(a) {
		t.Errorf("Subtract disjoint = %v, want [a]", got)
	}
}

func TestSubtractFullCover(t *testing.T) {
	a := NewBox([]float64{0.2, 0.2}, []float64{0.8, 0.8})
	b := Unit(2)
	if got := Subtract(a, b); len(got) != 0 {
		t.Errorf("Subtract fully covered = %v, want empty", got)
	}
}

func TestSubtractCenterHole(t *testing.T) {
	a := Unit(2)
	hole := NewBox([]float64{0.25, 0.25}, []float64{0.75, 0.75})
	pieces := Subtract(a, hole)
	if len(pieces) != 4 {
		t.Fatalf("center hole should yield 4 slabs, got %d: %v", len(pieces), pieces)
	}
	var vol float64
	for _, p := range pieces {
		vol += p.Volume()
	}
	want := a.Volume() - hole.Volume()
	if math.Abs(vol-want) > 1e-12 {
		t.Errorf("piece volume sum = %g, want %g", vol, want)
	}
	// Pieces must be pairwise disjoint and inside a.
	for i := range pieces {
		if !a.ContainsBox(pieces[i]) {
			t.Errorf("piece %v escapes %v", pieces[i], a)
		}
		if pieces[i].Overlaps(hole) {
			t.Errorf("piece %v overlaps the hole", pieces[i])
		}
		for j := i + 1; j < len(pieces); j++ {
			if pieces[i].Overlaps(pieces[j]) {
				t.Errorf("pieces %v and %v overlap", pieces[i], pieces[j])
			}
		}
	}
}

func TestSubtractEmptyInput(t *testing.T) {
	empty := NewBox([]float64{0, 0}, []float64{0, 0})
	if got := Subtract(empty, Unit(2)); len(got) != 0 {
		t.Errorf("Subtract of empty box = %v, want empty", got)
	}
}

func TestSubtractAll(t *testing.T) {
	a := Unit(2)
	holes := []Box{
		NewBox([]float64{0, 0}, []float64{0.5, 0.5}),
		NewBox([]float64{0.5, 0.5}, []float64{1, 1}),
	}
	remain := SubtractAll(a, holes)
	var vol float64
	for _, r := range remain {
		vol += r.Volume()
	}
	if math.Abs(vol-0.5) > 1e-12 {
		t.Errorf("remaining volume = %g, want 0.5", vol)
	}
}

func TestDisjointifyVolumeConservation(t *testing.T) {
	// Two overlapping unit squares offset by 0.5: union area = 2 - 0.25 = 1.75.
	boxes := []Box{
		NewBox([]float64{0, 0}, []float64{1, 1}),
		NewBox([]float64{0.5, 0.5}, []float64{1.5, 1.5}),
	}
	if got := UnionVolume(boxes); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("UnionVolume = %g, want 1.75", got)
	}
	dis := Disjointify(boxes)
	for i := range dis {
		for j := i + 1; j < len(dis); j++ {
			if dis[i].Overlaps(dis[j]) {
				t.Errorf("Disjointify produced overlapping boxes %v, %v", dis[i], dis[j])
			}
		}
	}
}

func TestUnionVolumeIdenticalBoxes(t *testing.T) {
	b := NewBox([]float64{0, 0}, []float64{1, 2})
	if got := UnionVolume([]Box{b, b, b}); math.Abs(got-2) > 1e-12 {
		t.Errorf("UnionVolume of triplicate = %g, want 2", got)
	}
}

func TestUnionIntersectionVolume(t *testing.T) {
	as := []Box{NewBox([]float64{0, 0}, []float64{1, 1})}
	bs := []Box{
		NewBox([]float64{0.5, 0}, []float64{2, 1}), // overlaps right half: 0.5
		NewBox([]float64{0, 0.5}, []float64{1, 2}), // overlaps top half: 0.5
	}
	// Intersection of union: right half ∪ top half of the unit square = 0.75.
	if got := UnionIntersectionVolume(as, bs); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("UnionIntersectionVolume = %g, want 0.75", got)
	}
	if got := UnionIntersectionVolume(nil, bs); got != 0 {
		t.Errorf("empty lhs should give 0, got %g", got)
	}
}

func TestCoversPoint(t *testing.T) {
	boxes := []Box{
		NewBox([]float64{0, 0}, []float64{0.5, 0.5}),
		NewBox([]float64{0.5, 0.5}, []float64{1, 1}),
	}
	if !CoversPoint(boxes, []float64{0.25, 0.25}) {
		t.Error("point in first box should be covered")
	}
	if CoversPoint(boxes, []float64{0.25, 0.75}) {
		t.Error("point in neither box should not be covered")
	}
}

// Property: |a| = |a ∩ b| + |a \ b| (volume is conserved by subtraction).
func TestPropertySubtractConservesVolume(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBox(r, 3)
		b := randomBox(r, 3)
		var rem float64
		for _, p := range Subtract(a, b) {
			rem += p.Volume()
		}
		return math.Abs(a.Volume()-(a.IntersectionVolume(b)+rem)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Disjointify conserves coverage — random points are covered by
// the disjoint set iff they were covered by the original set.
func TestPropertyDisjointifyCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		boxes := []Box{randomBox(r, 2), randomBox(r, 2), randomBox(r, 2)}
		dis := Disjointify(boxes)
		for k := 0; k < 50; k++ {
			p := []float64{r.Float64(), r.Float64()}
			if CoversPoint(boxes, p) != CoversPoint(dis, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: union volume never exceeds the sum of volumes and never falls
// below the max individual volume.
func TestPropertyUnionVolumeBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		boxes := []Box{randomBox(r, 2), randomBox(r, 2), randomBox(r, 2)}
		var sum, maxV float64
		for _, b := range boxes {
			sum += b.Volume()
			if b.Volume() > maxV {
				maxV = b.Volume()
			}
		}
		u := UnionVolume(boxes)
		return u <= sum+1e-12 && u >= maxV-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSubtract(b *testing.B) {
	a := Unit(4)
	hole := NewBox([]float64{0.2, 0.2, 0.2, 0.2}, []float64{0.8, 0.8, 0.8, 0.8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Subtract(a, hole)
	}
}
