// Package geom implements axis-aligned hyperrectangle (box) geometry in d
// dimensions. Boxes are the geometric currency of the whole repository:
// query predicates lower to boxes (internal/predicate), QuickSel
// subpopulations are boxes (internal/core), and every histogram baseline
// partitions the domain into boxes.
//
// A Box is the half-open product [Lo[0], Hi[0]) × ... × [Lo[d-1], Hi[d-1]).
// Half-open semantics make integer and categorical attributes exact: the
// paper (§2.2) maps an integer value k to the real interval [k, k+1).
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Box is an axis-aligned hyperrectangle. The zero value is a 0-dimensional
// box with volume 1 (the empty product), which is rarely useful; construct
// boxes with NewBox or Unit.
type Box struct {
	Lo []float64 // inclusive lower corner
	Hi []float64 // exclusive upper corner
}

// NewBox returns the box with the given corners. It panics if the corner
// slices differ in length; use Validate to check well-formedness (Lo <= Hi)
// without panicking.
func NewBox(lo, hi []float64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: corner dimension mismatch: %d vs %d", len(lo), len(hi)))
	}
	return Box{Lo: lo, Hi: hi}
}

// Unit returns the unit cube [0,1)^d. All estimators in this repository
// operate on predicates normalized into the unit cube.
func Unit(d int) Box {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = 1
	}
	return Box{Lo: lo, Hi: hi}
}

// Dim returns the dimensionality of the box.
func (b Box) Dim() int { return len(b.Lo) }

// Validate reports an error if the box is malformed: mismatched corner
// lengths, a NaN coordinate, or Lo[i] > Hi[i] in any dimension.
func (b Box) Validate() error {
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("geom: corner dimension mismatch: %d vs %d", len(b.Lo), len(b.Hi))
	}
	for i := range b.Lo {
		if math.IsNaN(b.Lo[i]) || math.IsNaN(b.Hi[i]) {
			return fmt.Errorf("geom: NaN coordinate in dimension %d", i)
		}
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("geom: inverted interval in dimension %d: [%g, %g)", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// IsEmpty reports whether the box has zero volume, i.e. some side collapses.
func (b Box) IsEmpty() bool {
	for i := range b.Lo {
		if b.Hi[i] <= b.Lo[i] {
			return true
		}
	}
	return len(b.Lo) == 0
}

// Volume returns the d-dimensional volume Π (Hi[i] - Lo[i]). A malformed
// (inverted) box reports volume 0 rather than a negative value.
func (b Box) Volume() float64 {
	if len(b.Lo) == 0 {
		return 0
	}
	v := 1.0
	for i := range b.Lo {
		side := b.Hi[i] - b.Lo[i]
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// Side returns the length of the box along dimension i.
func (b Box) Side(i int) float64 { return b.Hi[i] - b.Lo[i] }

// Center returns the midpoint of the box.
func (b Box) Center() []float64 {
	c := make([]float64, len(b.Lo))
	for i := range c {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}

// Contains reports whether the point lies inside the half-open box.
func (b Box) Contains(p []float64) bool {
	if len(p) != len(b.Lo) {
		return false
	}
	for i := range p {
		if p[i] < b.Lo[i] || p[i] >= b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether other lies entirely within b.
// An empty other is contained in everything of the same dimension.
func (b Box) ContainsBox(other Box) bool {
	if other.Dim() != b.Dim() {
		return false
	}
	if other.IsEmpty() {
		return true
	}
	for i := range b.Lo {
		if other.Lo[i] < b.Lo[i] || other.Hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Equal reports whether the two boxes have identical corners.
func (b Box) Equal(other Box) bool {
	if b.Dim() != other.Dim() {
		return false
	}
	for i := range b.Lo {
		if b.Lo[i] != other.Lo[i] || b.Hi[i] != other.Hi[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the box; mutating the copy's corners does not
// affect the original.
func (b Box) Clone() Box {
	lo := make([]float64, len(b.Lo))
	hi := make([]float64, len(b.Hi))
	copy(lo, b.Lo)
	copy(hi, b.Hi)
	return Box{Lo: lo, Hi: hi}
}

// Intersect returns the intersection of the two boxes and whether it is
// non-empty. The returned box shares no storage with the inputs.
func (b Box) Intersect(other Box) (Box, bool) {
	if b.Dim() != other.Dim() {
		return Box{}, false
	}
	lo := make([]float64, b.Dim())
	hi := make([]float64, b.Dim())
	for i := range lo {
		lo[i] = math.Max(b.Lo[i], other.Lo[i])
		hi[i] = math.Min(b.Hi[i], other.Hi[i])
		if hi[i] <= lo[i] {
			return Box{}, false
		}
	}
	return Box{Lo: lo, Hi: hi}, true
}

// Overlaps reports whether the two boxes share positive volume.
func (b Box) Overlaps(other Box) bool {
	if b.Dim() != other.Dim() {
		return false
	}
	for i := range b.Lo {
		if math.Min(b.Hi[i], other.Hi[i]) <= math.Max(b.Lo[i], other.Lo[i]) {
			return false
		}
	}
	return true
}

// IntersectionVolume returns |b ∩ other| without materializing the
// intersection box. This is the hot operation of QuickSel's training
// (Theorem 1 computes it m² + n·m times), so it allocates nothing.
func (b Box) IntersectionVolume(other Box) float64 {
	if b.Dim() != other.Dim() {
		return 0
	}
	v := 1.0
	for i := range b.Lo {
		side := math.Min(b.Hi[i], other.Hi[i]) - math.Max(b.Lo[i], other.Lo[i])
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// Jaccard returns the volume-based Jaccard similarity |b ∩ other| / |b ∪
// other| of two boxes, in [0, 1]. The union volume is |b| + |other| − |b ∩
// other| (inclusion-exclusion; the union of two boxes is generally not a
// box, but its volume is exact). Two boxes with zero union volume — both
// empty — have similarity 0. The observation coreset (internal/core) merges
// feedback whose predicate boxes exceed a Jaccard threshold.
func (b Box) Jaccard(other Box) float64 {
	inter := b.IntersectionVolume(other)
	if inter <= 0 {
		return 0
	}
	union := b.Volume() + other.Volume() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Clip returns b intersected with bounds, clamping rather than dropping: the
// result is always a valid (possibly empty) box lying inside bounds.
func (b Box) Clip(bounds Box) Box {
	lo := make([]float64, len(b.Lo))
	hi := make([]float64, len(b.Hi))
	b.ClipInto(bounds, lo, hi)
	return Box{Lo: lo, Hi: hi}
}

// ClipInto writes the corners of b clipped to bounds into lo and hi (each of
// length Dim). It is Clip without the two slice allocations — the serving
// hot path clips every query box into reusable scratch corners — and the
// single source of the clamp semantics Clip exposes.
func (b Box) ClipInto(bounds Box, lo, hi []float64) {
	for i := range b.Lo {
		l, h := b.Lo[i], b.Hi[i]
		if l < bounds.Lo[i] {
			l = bounds.Lo[i]
		}
		if h > bounds.Hi[i] {
			h = bounds.Hi[i]
		}
		if h < l {
			h = l
		}
		lo[i], hi[i] = l, h
	}
}

// BoundingBox returns the smallest box containing both arguments.
func (b Box) BoundingBox(other Box) Box {
	lo := make([]float64, b.Dim())
	hi := make([]float64, b.Dim())
	for i := range lo {
		lo[i] = math.Min(b.Lo[i], other.Lo[i])
		hi[i] = math.Max(b.Hi[i], other.Hi[i])
	}
	return Box{Lo: lo, Hi: hi}
}

// String renders the box as a product of intervals, e.g.
// "[0.1,0.5)×[0,1)".
func (b Box) String() string {
	var sb strings.Builder
	for i := range b.Lo {
		if i > 0 {
			sb.WriteByte('x')
		}
		fmt.Fprintf(&sb, "[%g,%g)", b.Lo[i], b.Hi[i])
	}
	return sb.String()
}

// SquaredDistance returns the squared Euclidean distance between two points.
// It panics if the points differ in dimension.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: point dimension mismatch: %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between two points.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// CenteredBox returns the box of the given per-dimension half-widths around
// center, clipped to bounds. Degenerate (zero-width) dimensions are widened
// to a minimal epsilon fraction of the bounds so the box keeps positive
// volume; QuickSel needs every subpopulation support to have |G_z| > 0.
func CenteredBox(center []float64, halfWidth []float64, bounds Box) Box {
	const minFrac = 1e-9
	lo := make([]float64, len(center))
	hi := make([]float64, len(center))
	for i := range center {
		w := halfWidth[i]
		minW := minFrac * bounds.Side(i)
		if w < minW {
			w = minW
		}
		lo[i] = center[i] - w
		hi[i] = center[i] + w
	}
	b := Box{Lo: lo, Hi: hi}.Clip(bounds)
	// Clipping can collapse a side when the center sits on the boundary;
	// push the collapsed side inward to restore positive volume.
	for i := range b.Lo {
		if b.Hi[i] <= b.Lo[i] {
			minW := minFrac * bounds.Side(i)
			if b.Lo[i]+minW <= bounds.Hi[i] {
				b.Hi[i] = b.Lo[i] + minW
			} else {
				b.Lo[i] = b.Hi[i] - minW
			}
		}
	}
	return b
}
