package geom

// This file implements BoxSet, a structure-of-arrays layout for a fixed
// collection of same-dimensional boxes. The []Box representation chases a
// pointer per box (each Box holds two heap slices); the hot training kernels
// (Q-matrix assembly computes |G_i ∩ G_j| for all m²/2 pairs) and the
// compiled serving path instead stream two contiguous float64 arrays, which
// keeps the pair kernel memory-bound on cache lines rather than on pointer
// dereferences.
//
// Every numeric method mirrors the corresponding Box method exactly — same
// ascending-dimension order, same early-outs — so converting a []Box to a
// BoxSet never changes a computed volume bit.

import "fmt"

// BoxSet stores n boxes of dimension dim with all lower corners in one
// contiguous slice and all upper corners in another: box i spans
// Lo[i*dim:(i+1)*dim), Hi[i*dim:(i+1)*dim).
type BoxSet struct {
	dim int
	Lo  []float64
	Hi  []float64
}

// NewBoxSet returns an empty set of dim-dimensional boxes with capacity for
// n boxes pre-allocated.
func NewBoxSet(dim, n int) *BoxSet {
	if dim < 1 {
		panic(fmt.Sprintf("geom: BoxSet dimension must be >= 1, got %d", dim))
	}
	return &BoxSet{
		dim: dim,
		Lo:  make([]float64, 0, n*dim),
		Hi:  make([]float64, 0, n*dim),
	}
}

// BoxSetOf packs the boxes into a new BoxSet. All boxes must share one
// dimension; the set copies the corners, so later mutation of the input
// boxes does not affect it.
func BoxSetOf(boxes []Box) *BoxSet {
	if len(boxes) == 0 {
		panic("geom: BoxSetOf needs at least one box to fix the dimension")
	}
	s := NewBoxSet(boxes[0].Dim(), len(boxes))
	for _, b := range boxes {
		s.Append(b)
	}
	return s
}

// Len returns the number of boxes in the set.
func (s *BoxSet) Len() int { return len(s.Lo) / s.dim }

// Dim returns the dimensionality of the set's boxes.
func (s *BoxSet) Dim() int { return s.dim }

// Append adds a box to the set. It panics on a dimension mismatch.
func (s *BoxSet) Append(b Box) {
	if b.Dim() != s.dim {
		panic(fmt.Sprintf("geom: BoxSet.Append dimension mismatch: %d vs %d", b.Dim(), s.dim))
	}
	s.Lo = append(s.Lo, b.Lo...)
	s.Hi = append(s.Hi, b.Hi...)
}

// Box returns a copy of box i; mutating it does not affect the set.
func (s *BoxSet) Box(i int) Box {
	lo := make([]float64, s.dim)
	hi := make([]float64, s.dim)
	copy(lo, s.Lo[i*s.dim:(i+1)*s.dim])
	copy(hi, s.Hi[i*s.dim:(i+1)*s.dim])
	return Box{Lo: lo, Hi: hi}
}

// Volume returns the volume of box i, computed with the same operation order
// as Box.Volume.
func (s *BoxSet) Volume(i int) float64 {
	base := i * s.dim
	v := 1.0
	for d := 0; d < s.dim; d++ {
		side := s.Hi[base+d] - s.Lo[base+d]
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// IntersectionVolume returns |box i ∩ box j| allocation-free, bit-identical
// to Box.IntersectionVolume on the same corners.
func (s *BoxSet) IntersectionVolume(i, j int) float64 {
	bi, bj := i*s.dim, j*s.dim
	v := 1.0
	for d := 0; d < s.dim; d++ {
		hi := s.Hi[bi+d]
		if h := s.Hi[bj+d]; h < hi {
			hi = h
		}
		lo := s.Lo[bi+d]
		if l := s.Lo[bj+d]; l > lo {
			lo = l
		}
		side := hi - lo
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// CornersIntersectionVolume returns the intersection volume of box i with
// the box given by raw corner slices (len dim each). This is the serving
// kernel: the query box arrives as two scratch slices, never as a Box.
func (s *BoxSet) CornersIntersectionVolume(i int, qlo, qhi []float64) float64 {
	base := i * s.dim
	v := 1.0
	for d := 0; d < s.dim; d++ {
		hi := s.Hi[base+d]
		if qhi[d] < hi {
			hi = qhi[d]
		}
		lo := s.Lo[base+d]
		if qlo[d] > lo {
			lo = qlo[d]
		}
		side := hi - lo
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}
