package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBoxPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched corners")
		}
	}()
	NewBox([]float64{0, 0}, []float64{1})
}

func TestUnit(t *testing.T) {
	u := Unit(3)
	if u.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", u.Dim())
	}
	if got := u.Volume(); got != 1 {
		t.Fatalf("Volume = %g, want 1", got)
	}
	if !u.Contains([]float64{0, 0.5, 0.999}) {
		t.Error("unit cube should contain interior point")
	}
	if u.Contains([]float64{0, 0.5, 1}) {
		t.Error("half-open cube must exclude upper boundary")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		b       Box
		wantErr bool
	}{
		{"valid", NewBox([]float64{0}, []float64{1}), false},
		{"degenerate ok", NewBox([]float64{1}, []float64{1}), false},
		{"inverted", NewBox([]float64{2}, []float64{1}), true},
		{"nan lo", NewBox([]float64{math.NaN()}, []float64{1}), true},
		{"nan hi", NewBox([]float64{0}, []float64{math.NaN()}), true},
		{"mismatch", Box{Lo: []float64{0, 0}, Hi: []float64{1}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.b.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestVolume(t *testing.T) {
	tests := []struct {
		name string
		b    Box
		want float64
	}{
		{"unit square", NewBox([]float64{0, 0}, []float64{1, 1}), 1},
		{"rect", NewBox([]float64{0, 0}, []float64{2, 3}), 6},
		{"degenerate", NewBox([]float64{0, 0}, []float64{0, 3}), 0},
		{"inverted reports zero", Box{Lo: []float64{1}, Hi: []float64{0}}, 0},
		{"zero-dim", Box{}, 0},
		{"3d", NewBox([]float64{-1, -1, -1}, []float64{1, 1, 1}), 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.b.Volume(); got != tt.want {
				t.Errorf("Volume() = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestIntersect(t *testing.T) {
	a := NewBox([]float64{0, 0}, []float64{2, 2})
	b := NewBox([]float64{1, 1}, []float64{3, 3})
	inter, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := NewBox([]float64{1, 1}, []float64{2, 2})
	if !inter.Equal(want) {
		t.Errorf("Intersect = %v, want %v", inter, want)
	}

	c := NewBox([]float64{5, 5}, []float64{6, 6})
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint boxes must not intersect")
	}

	// Touching boxes share no volume under half-open semantics.
	d := NewBox([]float64{2, 0}, []float64{4, 2})
	if _, ok := a.Intersect(d); ok {
		t.Error("touching boxes must not intersect")
	}

	if _, ok := a.Intersect(NewBox([]float64{0}, []float64{1})); ok {
		t.Error("dimension mismatch must not intersect")
	}
}

func TestIntersectionVolumeMatchesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randomBox(rng, 3)
		b := randomBox(rng, 3)
		var want float64
		if inter, ok := a.Intersect(b); ok {
			want = inter.Volume()
		}
		if got := a.IntersectionVolume(b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("IntersectionVolume = %g, want %g for %v ∩ %v", got, want, a, b)
		}
	}
}

func TestContainsBox(t *testing.T) {
	outer := NewBox([]float64{0, 0}, []float64{4, 4})
	inner := NewBox([]float64{1, 1}, []float64{2, 2})
	if !outer.ContainsBox(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsBox(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.ContainsBox(outer) {
		t.Error("box should contain itself")
	}
	empty := NewBox([]float64{1, 1}, []float64{1, 1})
	if !outer.ContainsBox(empty) {
		t.Error("empty box is contained in anything of equal dim")
	}
	if outer.ContainsBox(Unit(3)) {
		t.Error("dimension mismatch")
	}
}

func TestClip(t *testing.T) {
	bounds := Unit(2)
	b := NewBox([]float64{-1, 0.5}, []float64{0.5, 2})
	got := b.Clip(bounds)
	want := NewBox([]float64{0, 0.5}, []float64{0.5, 1})
	if !got.Equal(want) {
		t.Errorf("Clip = %v, want %v", got, want)
	}
	// Entirely outside clips to an empty box, never inverted.
	outside := NewBox([]float64{2, 2}, []float64{3, 3})
	clipped := outside.Clip(bounds)
	if err := clipped.Validate(); err != nil {
		t.Errorf("clipped box invalid: %v", err)
	}
	if !clipped.IsEmpty() {
		t.Errorf("clip of disjoint box should be empty, got %v", clipped)
	}
}

func TestCenterAndSide(t *testing.T) {
	b := NewBox([]float64{0, 2}, []float64{4, 6})
	c := b.Center()
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Center = %v, want [2 4]", c)
	}
	if b.Side(0) != 4 || b.Side(1) != 4 {
		t.Errorf("Side = %g,%g want 4,4", b.Side(0), b.Side(1))
	}
}

func TestBoundingBox(t *testing.T) {
	a := NewBox([]float64{0, 0}, []float64{1, 1})
	b := NewBox([]float64{2, -1}, []float64{3, 0.5})
	got := a.BoundingBox(b)
	want := NewBox([]float64{0, -1}, []float64{3, 1})
	if !got.Equal(want) {
		t.Errorf("BoundingBox = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewBox([]float64{0}, []float64{1})
	c := a.Clone()
	c.Lo[0] = 5
	if a.Lo[0] != 0 {
		t.Error("Clone must not share storage")
	}
}

func TestDistance(t *testing.T) {
	if d := Distance([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("Distance = %g, want 5", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Distance([]float64{0}, []float64{1, 2})
}

func TestCenteredBox(t *testing.T) {
	bounds := Unit(2)
	b := CenteredBox([]float64{0.5, 0.5}, []float64{0.25, 0.1}, bounds)
	want := NewBox([]float64{0.25, 0.4}, []float64{0.75, 0.6})
	if !b.Equal(want) {
		t.Errorf("CenteredBox = %v, want %v", b, want)
	}

	// Near the boundary the box clips but stays inside bounds with volume.
	edge := CenteredBox([]float64{0, 1}, []float64{0.2, 0.2}, bounds)
	if !bounds.ContainsBox(edge) {
		t.Errorf("edge box %v escapes bounds", edge)
	}
	if edge.Volume() <= 0 {
		t.Errorf("edge box must keep positive volume, got %v", edge)
	}

	// Zero half-width is widened to keep positive volume.
	thin := CenteredBox([]float64{0.5, 0.5}, []float64{0, 0}, bounds)
	if thin.Volume() <= 0 {
		t.Errorf("degenerate box must be widened, got %v", thin)
	}
}

func TestStringFormat(t *testing.T) {
	b := NewBox([]float64{0, 1}, []float64{1, 2})
	if got, want := b.String(), "[0,1)x[1,2)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// randomBox returns a valid random box inside [0,1)^d.
func randomBox(rng *rand.Rand, d int) Box {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return Box{Lo: lo, Hi: hi}
}

// Property: intersection volume is symmetric and bounded by both operands.
func TestPropertyIntersectionSymmetricBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		a := randomBox(r, 4)
		b := randomBox(r, 4)
		ab := a.IntersectionVolume(b)
		ba := b.IntersectionVolume(a)
		if math.Abs(ab-ba) > 1e-15 {
			return false
		}
		return ab <= a.Volume()+1e-15 && ab <= b.Volume()+1e-15 && ab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a box intersected with itself has its own volume; with its
// bounding union partner the volume never exceeds the bound's volume.
func TestPropertySelfIntersection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBox(r, 3)
		return math.Abs(a.IntersectionVolume(a)-a.Volume()) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Contains is consistent with IntersectionVolume — a point box
// of tiny width centered at a contained point overlaps.
func TestPropertyContainsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBox(r, 2)
		if b.IsEmpty() {
			return true
		}
		p := b.Center()
		return b.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersectionVolume(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomBox(rng, 4)
	y := randomBox(rng, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectionVolume(y)
	}
}
