package isomer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quicksel/internal/geom"
	"quicksel/internal/linalg"
	"quicksel/internal/qp"
)

func mustHist(t *testing.T, cfg Config) *Histogram {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Error("expected error for Dim 0")
	}
	if _, err := New(Config{Dim: 2, MaxBuckets: -1}); err == nil {
		t.Error("expected error for negative MaxBuckets")
	}
}

func TestInitialState(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	if h.NumBuckets() != 1 {
		t.Fatalf("NumBuckets = %d, want 1 (B0)", h.NumBuckets())
	}
	// Untrained histogram is the uniform distribution.
	got, err := h.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("uniform estimate = %g, want 0.25", got)
	}
}

func TestPartitionInvariants(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 15; i++ {
		lo := []float64{rng.Float64() * 0.7, rng.Float64() * 0.7}
		box := geom.NewBox(lo, []float64{lo[0] + 0.05 + rng.Float64()*0.25, lo[1] + 0.05 + rng.Float64()*0.25}).Clip(geom.Unit(2))
		if err := h.Observe(box, rng.Float64()); err != nil {
			t.Fatal(err)
		}
		// Invariant 1: buckets are pairwise disjoint.
		// Invariant 2: buckets tile the unit cube exactly.
		var vol float64
		for a := range h.buckets {
			vol += h.buckets[a].Volume()
			for b := a + 1; b < len(h.buckets); b++ {
				if h.buckets[a].Overlaps(h.buckets[b]) {
					t.Fatalf("buckets %v and %v overlap after query %d", h.buckets[a], h.buckets[b], i)
				}
			}
		}
		if math.Abs(vol-1) > 1e-9 {
			t.Fatalf("partition volume = %g after query %d, want 1", vol, i)
		}
		// Invariant 3 (Appendix B): every observed box is exactly covered.
		if !h.exactlyCovered(box) {
			t.Fatalf("observed box %v not exactly covered after refinement", box)
		}
	}
}

func TestBucketGrowthIsSuperlinear(t *testing.T) {
	// The paper's Limitation 1: bucket count grows much faster than query
	// count for overlapping workloads.
	h := mustHist(t, Config{Dim: 2})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		lo := []float64{rng.Float64() * 0.5, rng.Float64() * 0.5}
		box := geom.NewBox(lo, []float64{lo[0] + 0.3, lo[1] + 0.3})
		if err := h.Observe(box, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumBuckets() < 4*h.NumObserved() {
		t.Errorf("expected superlinear bucket growth, got %d buckets for %d queries",
			h.NumBuckets(), h.NumObserved())
	}
}

func TestBucketCapFreezesPartition(t *testing.T) {
	h := mustHist(t, Config{Dim: 2, MaxBuckets: 30})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		lo := []float64{rng.Float64() * 0.6, rng.Float64() * 0.6}
		box := geom.NewBox(lo, []float64{lo[0] + 0.3, lo[1] + 0.3})
		if err := h.Observe(box, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	// The partition may exceed the cap by one refinement round but must
	// then stop growing.
	if h.NumBuckets() > 30*6 {
		t.Errorf("bucket cap ineffective: %d buckets", h.NumBuckets())
	}
	if !h.frozen {
		t.Error("histogram should be frozen after hitting the cap")
	}
}

func estimatorsAgreeOnTrained(t *testing.T, solver Solver) {
	t.Helper()
	h := mustHist(t, Config{Dim: 2, Solver: solver})
	obs := []struct {
		box geom.Box
		sel float64
	}{
		{geom.NewBox([]float64{0, 0}, []float64{0.5, 1}), 0.8},
		{geom.NewBox([]float64{0, 0}, []float64{1, 0.5}), 0.6},
		{geom.NewBox([]float64{0.25, 0.25}, []float64{0.75, 0.75}), 0.5},
	}
	for _, o := range obs {
		if err := h.Observe(o.box, o.sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Train(); err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		got, err := h.Estimate(o.box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-o.sel) > 0.02 {
			t.Errorf("%v query %d: estimate %g, want ≈%g", solver, i, got, o.sel)
		}
	}
	whole, err := h.Estimate(geom.Unit(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole-1) > 0.02 {
		t.Errorf("%v: estimate of B0 = %g, want ≈1", solver, whole)
	}
}

func TestIterativeScalingReproducesObservations(t *testing.T) {
	estimatorsAgreeOnTrained(t, IterativeScaling)
}

func TestQuickSelQPReproducesObservations(t *testing.T) {
	estimatorsAgreeOnTrained(t, QuickSelQP)
}

func TestObserveValidation(t *testing.T) {
	h := mustHist(t, Config{Dim: 2})
	if err := h.Observe(geom.Unit(3), 0.5); err == nil {
		t.Error("expected dim mismatch error")
	}
	if err := h.Observe(geom.Box{Lo: []float64{1, 1}, Hi: []float64{0, 0}}, 0.5); err == nil {
		t.Error("expected invalid box error")
	}
	if err := h.Observe(geom.Unit(2), math.NaN()); err == nil {
		t.Error("expected NaN error")
	}
	// Empty boxes are silently skipped.
	empty := geom.NewBox([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err := h.Observe(empty, 0.3); err != nil {
		t.Fatal(err)
	}
	if h.NumObserved() != 0 {
		t.Error("empty observation should be skipped")
	}
}

func TestSolverString(t *testing.T) {
	if IterativeScaling.String() == "" || QuickSelQP.String() == "" || Solver(9).String() == "" {
		t.Error("Solver strings must render")
	}
}

// TestWoodburyMatchesDenseQP cross-checks the specialized diagonal-QP
// solver against the dense analytic solver of internal/qp on the same
// instance.
func TestWoodburyMatchesDenseQP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 20, 5
	vols := make([]float64, m)
	for j := range vols {
		vols[j] = 0.01 + rng.Float64()*0.1
	}
	members := make([][]int, n)
	sels := make([]float64, n)
	members[0] = make([]int, m)
	for j := 0; j < m; j++ {
		members[0][j] = j
	}
	sels[0] = 1
	for i := 1; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.4 {
				members[i] = append(members[i], j)
			}
		}
		sels[i] = rng.Float64()
	}
	const lambda = 1e5
	wFast := solveDiagonalQP(vols, members, sels, lambda)

	// Dense reference.
	q := linalg.NewMatrix(m, m)
	for j := 0; j < m; j++ {
		q.Set(j, j, 1/vols[j])
	}
	a := linalg.NewMatrix(n, m)
	for i, mem := range members {
		for _, j := range mem {
			a.Set(i, j, 1)
		}
	}
	wDense, err := qp.SolveAnalytic(&qp.Problem{Q: q, A: a, S: sels, Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m; j++ {
		if math.Abs(wFast[j]-wDense[j]) > 1e-6*(1+math.Abs(wDense[j])) {
			t.Fatalf("w[%d]: woodbury %g vs dense %g", j, wFast[j], wDense[j])
		}
	}
}

// Property: for random consistent workloads both solvers produce estimates
// that reproduce the training observations.
func TestPropertyTrainedConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Hidden truth: mass concentrated in the left half.
		truth := func(b geom.Box) float64 {
			left := b.IntersectionVolume(geom.NewBox([]float64{0, 0}, []float64{0.5, 1}))
			right := b.Volume() - left
			return 1.6*left + 0.4*right
		}
		for _, solver := range []Solver{IterativeScaling, QuickSelQP} {
			h, err := New(Config{Dim: 2, Solver: solver, ScalingIters: 3000})
			if err != nil {
				return false
			}
			var boxes []geom.Box
			for i := 0; i < 6; i++ {
				lo := []float64{rng.Float64() * 0.6, rng.Float64() * 0.6}
				b := geom.NewBox(lo, []float64{lo[0] + 0.3, lo[1] + 0.3})
				boxes = append(boxes, b)
				if err := h.Observe(b, truth(b)); err != nil {
					return false
				}
			}
			if err := h.Train(); err != nil {
				return false
			}
			for _, b := range boxes {
				got, err := h.Estimate(b)
				if err != nil || math.Abs(got-truth(b)) > 0.05 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserveTrain(b *testing.B) {
	for _, solver := range []Solver{IterativeScaling, QuickSelQP} {
		b.Run(solver.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			boxes := make([]geom.Box, 25)
			for i := range boxes {
				lo := []float64{rng.Float64() * 0.6, rng.Float64() * 0.6}
				boxes[i] = geom.NewBox(lo, []float64{lo[0] + 0.3, lo[1] + 0.3})
			}
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				h, _ := New(Config{Dim: 2, Solver: solver})
				for _, box := range boxes {
					if err := h.Observe(box, 0.2); err != nil {
						b.Fatal(err)
					}
				}
				if err := h.Train(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
