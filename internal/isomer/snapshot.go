package isomer

import (
	"fmt"
	"math"

	"quicksel/internal/geom"
)

// SnapshotBox is the serialized form of one partition bucket.
type SnapshotBox struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// SnapshotQuery is one serialized observed query.
type SnapshotQuery struct {
	Lo  []float64 `json:"lo"`
	Hi  []float64 `json:"hi"`
	Sel float64   `json:"sel"`
}

// Snapshot is the complete serializable state of a Histogram: configuration,
// the disjoint bucket partition, the recorded queries, and (when trained)
// the solved bucket frequencies. ISOMER uses no randomness, so a restored
// histogram serves bit-identical estimates without re-running the solver.
type Snapshot struct {
	Dim                int             `json:"dim"`
	Solver             int             `json:"solver"`
	MaxBuckets         int             `json:"max_buckets"`
	Lambda             float64         `json:"lambda,omitempty"`
	ScalingIters       int             `json:"scaling_iters,omitempty"`
	ScalingTol         float64         `json:"scaling_tol,omitempty"`
	IncrementalScaling bool            `json:"incremental_scaling,omitempty"`
	Buckets            []SnapshotBox   `json:"buckets"`
	Queries            []SnapshotQuery `json:"queries,omitempty"`
	Weights            []float64       `json:"weights,omitempty"`
	Trained            bool            `json:"trained"`
	Frozen             bool            `json:"frozen,omitempty"`
}

// Snapshot exports the histogram's full state. The returned value shares no
// storage with the histogram and can be marshaled to JSON.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{
		Dim:                h.cfg.Dim,
		Solver:             int(h.cfg.Solver),
		MaxBuckets:         h.cfg.MaxBuckets,
		Lambda:             h.cfg.Lambda,
		ScalingIters:       h.cfg.ScalingIters,
		ScalingTol:         h.cfg.ScalingTol,
		IncrementalScaling: h.cfg.IncrementalScaling,
		Trained:            h.trained,
		Frozen:             h.frozen,
	}
	s.Buckets = make([]SnapshotBox, len(h.buckets))
	for i, b := range h.buckets {
		c := b.Clone()
		s.Buckets[i] = SnapshotBox{Lo: c.Lo, Hi: c.Hi}
	}
	s.Queries = make([]SnapshotQuery, len(h.queries))
	for i, q := range h.queries {
		c := q.box.Clone()
		s.Queries[i] = SnapshotQuery{Lo: c.Lo, Hi: c.Hi, Sel: q.sel}
	}
	if h.trained {
		s.Weights = append([]float64(nil), h.weights...)
	}
	return s
}

// Restore rebuilds a Histogram from a snapshot, validating dimensions, the
// solver, and the weights/buckets correspondence. The restored histogram
// estimates identically and keeps refining on further observations.
func Restore(s *Snapshot) (*Histogram, error) {
	if s == nil {
		return nil, fmt.Errorf("isomer: nil snapshot")
	}
	if s.Solver != int(IterativeScaling) && s.Solver != int(QuickSelQP) {
		return nil, fmt.Errorf("isomer: snapshot has unknown solver %d", s.Solver)
	}
	h, err := New(Config{
		Dim:                s.Dim,
		Solver:             Solver(s.Solver),
		MaxBuckets:         s.MaxBuckets,
		Lambda:             s.Lambda,
		ScalingIters:       s.ScalingIters,
		ScalingTol:         s.ScalingTol,
		IncrementalScaling: s.IncrementalScaling,
	})
	if err != nil {
		return nil, err
	}
	if len(s.Buckets) == 0 {
		return nil, fmt.Errorf("isomer: snapshot has no buckets")
	}
	h.buckets = make([]geom.Box, len(s.Buckets))
	for i, sb := range s.Buckets {
		box := geom.Box{Lo: sb.Lo, Hi: sb.Hi}.Clone()
		if box.Dim() != s.Dim {
			return nil, fmt.Errorf("isomer: snapshot bucket %d has dim %d, want %d", i, box.Dim(), s.Dim)
		}
		if err := box.Validate(); err != nil {
			return nil, fmt.Errorf("isomer: snapshot bucket %d: %w", i, err)
		}
		h.buckets[i] = box
	}
	h.queries = make([]obsQuery, len(s.Queries))
	for i, sq := range s.Queries {
		box := geom.Box{Lo: sq.Lo, Hi: sq.Hi}.Clone()
		if box.Dim() != s.Dim {
			return nil, fmt.Errorf("isomer: snapshot query %d has dim %d, want %d", i, box.Dim(), s.Dim)
		}
		if err := box.Validate(); err != nil {
			return nil, fmt.Errorf("isomer: snapshot query %d: %w", i, err)
		}
		if math.IsNaN(sq.Sel) || sq.Sel < 0 || sq.Sel > 1 {
			return nil, fmt.Errorf("isomer: snapshot query %d has selectivity %g", i, sq.Sel)
		}
		h.queries[i] = obsQuery{box: box, sel: sq.Sel}
	}
	if s.Trained {
		if len(s.Weights) != len(s.Buckets) {
			return nil, fmt.Errorf("isomer: snapshot has %d weights for %d buckets", len(s.Weights), len(s.Buckets))
		}
		for i, w := range s.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("isomer: snapshot weight %d is not finite", i)
			}
		}
		h.weights = append([]float64(nil), s.Weights...)
	}
	h.trained = s.Trained
	h.frozen = s.Frozen
	return h, nil
}
