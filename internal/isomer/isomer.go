// Package isomer implements ISOMER-style max-entropy query-driven
// histograms [Srivastava et al., ICDE 2006], the paper's strongest baseline.
//
// Bucket creation follows the STHoles-style refinement of Figure 1: the
// histogram maintains an exact disjoint partition of the (normalized)
// domain, and every new observed predicate splits each partially-overlapping
// bucket into its inside part and up-to-2d outside slabs. The partition
// therefore guarantees the 0/1 overlap property iterative scaling requires
// (every bucket is fully inside or fully outside every observed predicate —
// Appendix B), and it exhibits the bucket-count explosion that motivates
// QuickSel (§2.3, Limitation 1).
//
// Bucket frequencies are computed either by iterative scaling (classic
// ISOMER) or by QuickSel's penalized quadratic program (the ISOMER+QP
// hybrid of §5.1). For the QP variant the disjointness of buckets makes Q
// diagonal, so the solve uses the Woodbury identity and costs O(n²m + n³)
// instead of O(m³).
//
// Trade-off: the strongest baseline accuracy in the paper's comparison —
// the max-entropy distribution honors every observation exactly when
// feasible — but the partition (and so memory and training time) grows
// multiplicatively with observed queries, the limitation that motivates
// QuickSel. quickseld serves it as methods "isomer" (published scaling
// update) and "maxent" (optimized incremental update) behind a serving
// bucket cap (internal/estimator).
package isomer

import (
	"errors"
	"fmt"
	"math"

	"quicksel/internal/geom"
	"quicksel/internal/linalg"
	"quicksel/internal/maxent"
	"quicksel/internal/qp"
)

// Solver selects the frequency-computation algorithm.
type Solver int

const (
	// IterativeScaling is classic ISOMER (maximum entropy).
	IterativeScaling Solver = iota
	// QuickSelQP combines ISOMER's buckets with QuickSel's penalized QP
	// (the ISOMER+QP baseline of §5.1).
	QuickSelQP
)

func (s Solver) String() string {
	switch s {
	case IterativeScaling:
		return "iterative-scaling"
	case QuickSelQP:
		return "quicksel-qp"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// DefaultMaxBuckets bounds partition growth. The paper measured 318,936
// buckets after 300 queries; the cap keeps worst-case memory bounded. When
// the cap is hit, new queries stop refining the partition (the paper's
// systems prune *queries* for the same reason — §1) and are recorded only
// if they satisfy the 0/1 property against the existing partition.
const DefaultMaxBuckets = 200000

// Config tunes the histogram.
type Config struct {
	Dim        int
	Solver     Solver
	MaxBuckets int     // 0 means DefaultMaxBuckets
	Lambda     float64 // QP penalty; 0 means qp.DefaultLambda
	// ScalingOptions tunes iterative scaling.
	ScalingIters int     // 0 means 500
	ScalingTol   float64 // 0 means 1e-6
	// IncrementalScaling enables the optimized iterative-scaling update
	// (see maxent.Options.Incremental). Off by default so the baseline runs
	// the algorithm as published.
	IncrementalScaling bool
}

// Histogram is an ISOMER max-entropy histogram.
type Histogram struct {
	cfg     Config
	unit    geom.Box
	buckets []geom.Box // exact disjoint partition of the unit cube
	queries []obsQuery
	weights []float64
	trained bool
	frozen  bool // partition refinement stopped (bucket cap reached)
}

type obsQuery struct {
	box geom.Box
	sel float64
}

// New returns a histogram whose partition initially contains the single
// bucket B0 (the whole normalized domain).
func New(cfg Config) (*Histogram, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("isomer: Dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.MaxBuckets == 0 {
		cfg.MaxBuckets = DefaultMaxBuckets
	}
	if cfg.MaxBuckets < 1 {
		return nil, fmt.Errorf("isomer: MaxBuckets must be positive, got %d", cfg.MaxBuckets)
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = qp.DefaultLambda
	}
	if cfg.ScalingIters == 0 {
		cfg.ScalingIters = 500
	}
	if cfg.ScalingTol == 0 {
		cfg.ScalingTol = 1e-6
	}
	unit := geom.Unit(cfg.Dim)
	return &Histogram{
		cfg:     cfg,
		unit:    unit,
		buckets: []geom.Box{unit},
	}, nil
}

// Dim returns the dimensionality of the histogram's domain.
func (h *Histogram) Dim() int { return h.cfg.Dim }

// NumBuckets returns the current partition size.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// ParamCount returns the number of model parameters (bucket frequencies),
// the quantity Figure 4 tracks.
func (h *Histogram) ParamCount() int { return len(h.buckets) }

// NumObserved returns the number of recorded queries.
func (h *Histogram) NumObserved() int { return len(h.queries) }

// NeedsTraining reports whether queries have arrived since the last scaling
// solve, i.e. whether the next Estimate would pay a lazy training pass.
func (h *Histogram) NeedsTraining() bool { return !h.trained && len(h.queries) > 0 }

// Observe records a (predicate box, selectivity) pair, refining the bucket
// partition so the box is exactly covered by whole buckets.
func (h *Histogram) Observe(box geom.Box, sel float64) error {
	if box.Dim() != h.cfg.Dim {
		return fmt.Errorf("isomer: observed box has dim %d, want %d", box.Dim(), h.cfg.Dim)
	}
	if err := box.Validate(); err != nil {
		return fmt.Errorf("isomer: observed box: %w", err)
	}
	if math.IsNaN(sel) {
		return errors.New("isomer: NaN selectivity")
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	b := box.Clip(h.unit)
	if b.IsEmpty() {
		return nil
	}
	if !h.frozen {
		h.refine(b)
		if len(h.buckets) >= h.cfg.MaxBuckets {
			h.frozen = true
		}
	} else if !h.exactlyCovered(b) {
		// Bucket cap reached and this query would need a partial overlap,
		// which iterative scaling cannot represent (Appendix B): drop it,
		// mirroring the query pruning of the original systems.
		return nil
	}
	h.queries = append(h.queries, obsQuery{box: b, sel: sel})
	h.trained = false
	return nil
}

// refine splits every bucket that partially overlaps b into its
// intersection with b plus the outside slabs.
func (h *Histogram) refine(b geom.Box) {
	out := h.buckets[:0:0] // fresh backing array; old slice aliases queries of history? no, boxes are immutable
	for _, bucket := range h.buckets {
		inter, ok := bucket.Intersect(b)
		if !ok || inter.Equal(bucket) {
			out = append(out, bucket)
			continue
		}
		out = append(out, inter)
		out = append(out, geom.Subtract(bucket, b)...)
	}
	h.buckets = out
}

// exactlyCovered reports whether b is exactly a union of whole buckets.
func (h *Histogram) exactlyCovered(b geom.Box) bool {
	var covered float64
	for _, bucket := range h.buckets {
		iv := bucket.IntersectionVolume(b)
		if iv == 0 {
			continue
		}
		if math.Abs(iv-bucket.Volume()) > 1e-12*bucket.Volume() {
			return false // partial overlap
		}
		covered += iv
	}
	return math.Abs(covered-b.Volume()) <= 1e-9*math.Max(b.Volume(), 1e-300)
}

// membership returns, for every query (prefixed by the default query over
// the whole domain), the bucket indices fully inside it. Bucket membership
// is decided by center containment, which is exact thanks to the partition
// invariant.
func (h *Histogram) membership() ([][]int, []float64) {
	members := make([][]int, len(h.queries)+1)
	sels := make([]float64, len(h.queries)+1)
	all := make([]int, len(h.buckets))
	for j := range all {
		all[j] = j
	}
	members[0] = all
	sels[0] = 1
	centers := make([][]float64, len(h.buckets))
	for j, b := range h.buckets {
		centers[j] = b.Center()
	}
	for i, q := range h.queries {
		var mem []int
		for j := range h.buckets {
			if q.box.Contains(centers[j]) {
				mem = append(mem, j)
			}
		}
		members[i+1] = mem
		sels[i+1] = q.sel
	}
	return members, sels
}

// Train computes bucket frequencies with the configured solver.
func (h *Histogram) Train() error {
	if len(h.queries) == 0 {
		// Max-entropy with only the default query: uniform per volume.
		h.weights = make([]float64, len(h.buckets))
		for j, b := range h.buckets {
			h.weights[j] = b.Volume()
		}
		h.trained = true
		return nil
	}
	members, sels := h.membership()
	// Zero-volume buckets (slivers from queries sharing a boundary, common
	// on discretized integer columns) are excluded from the solve and pinned
	// to weight 0: Estimate skips them — a bucket with no volume has no
	// density — so mass assigned to them would silently vanish, and their
	// floored volumes make the scaling products overflow to Inf and then
	// NaN, poisoning every weight.
	idx := make([]int, len(h.buckets)) // bucket -> compact solve index, -1 when degenerate
	var vols []float64
	for j, b := range h.buckets {
		if v := b.Volume(); v > 0 {
			idx[j] = len(vols)
			vols = append(vols, v)
		} else {
			idx[j] = -1
		}
	}
	if len(vols) < len(h.buckets) {
		compact := make([][]int, len(members))
		for i, mem := range members {
			kept := make([]int, 0, len(mem))
			for _, j := range mem {
				if idx[j] >= 0 {
					kept = append(kept, idx[j])
				}
			}
			compact[i] = kept
		}
		members = compact
	}
	var solved []float64
	switch h.cfg.Solver {
	case IterativeScaling:
		res, err := maxent.Solve(
			&maxent.Problem{Volumes: vols, Members: members, Sels: sels},
			maxent.Options{MaxIters: h.cfg.ScalingIters, Tol: h.cfg.ScalingTol, Incremental: h.cfg.IncrementalScaling},
		)
		if err != nil {
			return fmt.Errorf("isomer: %w", err)
		}
		solved = res.Weights
	case QuickSelQP:
		solved = solveDiagonalQP(vols, members, sels, h.cfg.Lambda)
	default:
		return fmt.Errorf("isomer: unknown solver %v", h.cfg.Solver)
	}
	if len(vols) == len(h.buckets) {
		h.weights = solved
	} else {
		h.weights = make([]float64, len(h.buckets))
		for j, c := range idx {
			if c >= 0 {
				h.weights[j] = solved[c]
			}
		}
	}
	h.trained = true
	return nil
}

// Estimate returns the histogram's estimate for a normalized box, clamped
// to [0,1]. An untrained histogram trains lazily.
func (h *Histogram) Estimate(box geom.Box) (float64, error) {
	if box.Dim() != h.cfg.Dim {
		return 0, fmt.Errorf("isomer: query box has dim %d, want %d", box.Dim(), h.cfg.Dim)
	}
	if !h.trained {
		if err := h.Train(); err != nil {
			return 0, err
		}
	}
	b := box.Clip(h.unit)
	var est float64
	for j, bucket := range h.buckets {
		w := h.weights[j]
		if w == 0 {
			continue
		}
		v := bucket.Volume()
		if v <= 0 {
			continue
		}
		est += w * bucket.IntersectionVolume(b) / v
	}
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

// solveDiagonalQP solves min wᵀDw + λ‖Aw−s‖² where D = diag(1/v_j) and A is
// the 0/1 membership matrix, via the Woodbury identity:
//
//	w = λ(D + λAᵀA)⁻¹Aᵀs
//	(D + λAᵀA)⁻¹ = D⁻¹ − D⁻¹Aᵀ(I/λ + A D⁻¹ Aᵀ)⁻¹ A D⁻¹
//
// Cost: O(n²·m) to build the n×n kernel K plus one n×n solve, where n is
// the number of queries (small) and m the number of buckets (large).
func solveDiagonalQP(vols []float64, members [][]int, sels []float64, lambda float64) []float64 {
	m := len(vols)
	n := len(members)
	// u = Aᵀs ∈ R^m.
	u := make([]float64, m)
	for i, mem := range members {
		si := sels[i]
		for _, j := range mem {
			u[j] += si
		}
	}
	// K = I/λ + A D⁻¹ Aᵀ, K_ik = Σ_{j ∈ C_i ∩ C_k} v_j. Build via bucket →
	// query incidence to avoid repeated set intersections.
	incident := make([][]int32, m)
	for i, mem := range members {
		for _, j := range mem {
			incident[j] = append(incident[j], int32(i))
		}
	}
	k := linalg.NewMatrix(n, n)
	for j := 0; j < m; j++ {
		vj := vols[j]
		qs := incident[j]
		for a := 0; a < len(qs); a++ {
			for b := a; b < len(qs); b++ {
				k.Data[int(qs[a])*n+int(qs[b])] += vj
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k.Data[j*n+i] = k.Data[i*n+j]
		}
		k.Data[i*n+i] += 1 / lambda
	}
	// t = A D⁻¹ u ∈ R^n.
	t := make([]float64, n)
	for i, mem := range members {
		var s float64
		for _, j := range mem {
			s += vols[j] * u[j]
		}
		t[i] = s
	}
	y, _, err := linalg.SolveSPD(k, t)
	if err != nil {
		// K is SPD by construction; if the ridge cascade still fails, fall
		// back to frequencies proportional to volume (uniform).
		w := make([]float64, m)
		copy(w, vols)
		return w
	}
	// w = λ·D⁻¹(u − Aᵀy), i.e. w_j = λ·v_j·(u_j − Σ_{i: j∈C_i} y_i).
	w := make([]float64, m)
	for j := 0; j < m; j++ {
		corr := 0.0
		for _, i := range incident[j] {
			corr += y[i]
		}
		w[j] = lambda * vols[j] * (u[j] - corr)
	}
	return w
}
