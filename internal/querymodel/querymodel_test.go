package querymodel

import (
	"math"
	"testing"

	"quicksel/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Error("expected error for Dim 0")
	}
	if _, err := New(Config{Dim: 2, Bandwidth: -1}); err == nil {
		t.Error("expected error for negative bandwidth")
	}
}

func TestUniformFallback(t *testing.T) {
	m, err := New(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(geom.NewBox([]float64{0, 0}, []float64{0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("fallback = %g, want 0.25", got)
	}
}

func TestExactRecallOfObservedQuery(t *testing.T) {
	m, err := New(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := geom.NewBox([]float64{0.2, 0.2}, []float64{0.4, 0.4})
	if err := m.Observe(b, 0.33); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.33) > 1e-9 {
		t.Errorf("recall of identical query = %g, want 0.33", got)
	}
}

func TestSimilarityWeighting(t *testing.T) {
	m, err := New(Config{Dim: 1, Bandwidth: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Two far-apart observed queries with different selectivities.
	left := geom.NewBox([]float64{0.0}, []float64{0.2})
	right := geom.NewBox([]float64{0.8}, []float64{1.0})
	if err := m.Observe(left, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(right, 0.1); err != nil {
		t.Fatal(err)
	}
	// A query near the left one should estimate near 0.9.
	got, err := m.Estimate(geom.NewBox([]float64{0.02}, []float64{0.22}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 0.05 {
		t.Errorf("near-left estimate = %g, want ≈0.9", got)
	}
	// And near the right one, near 0.1.
	got, err = m.Estimate(geom.NewBox([]float64{0.78}, []float64{0.98}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 0.05 {
		t.Errorf("near-right estimate = %g, want ≈0.1", got)
	}
}

func TestFarQueryFallsBackToNearest(t *testing.T) {
	m, err := New(Config{Dim: 1, Bandwidth: 0.001}) // extremely narrow kernel
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(geom.NewBox([]float64{0}, []float64{0.1}), 0.7); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(geom.NewBox([]float64{0.9}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.7 {
		t.Errorf("nearest fallback = %g, want 0.7", got)
	}
}

func TestParamCountGrowsLinearly(t *testing.T) {
	m, err := New(Config{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Observe(geom.Unit(3), 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.ParamCount(); got != 10*7 {
		t.Errorf("ParamCount = %d, want 70 (10 queries × (2·3+1))", got)
	}
	if m.NumObserved() != 10 {
		t.Errorf("NumObserved = %d", m.NumObserved())
	}
}

func TestObserveValidation(t *testing.T) {
	m, err := New(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(geom.Unit(3), 0.5); err == nil {
		t.Error("expected dim mismatch")
	}
	if err := m.Observe(geom.Unit(2), math.NaN()); err == nil {
		t.Error("expected NaN error")
	}
	if err := m.Observe(geom.Box{Lo: []float64{1, 1}, Hi: []float64{0, 0}}, 0.2); err == nil {
		t.Error("expected invalid box error")
	}
	if _, err := m.Estimate(geom.Unit(3)); err == nil {
		t.Error("expected dim mismatch on estimate")
	}
}

func TestSelectivityClamping(t *testing.T) {
	m, err := New(Config{Dim: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(geom.Unit(1), 5); err != nil {
		t.Fatal(err)
	}
	got, err := m.Estimate(geom.Unit(1))
	if err != nil {
		t.Fatal(err)
	}
	if got > 1 {
		t.Errorf("estimate %g exceeds 1 after clamped observation", got)
	}
}
