// Package querymodel implements the QueryModel baseline [Anagnostopoulos &
// Triantafillou, Big Data 2015] of the paper's evaluation: it "computes the
// selectivity estimate by a weighted average of the selectivities of
// observed queries", with weights determined by the similarity between the
// new query and each observed query. No model of the data distribution is
// built; the observed queries themselves are the model.
package querymodel

import (
	"errors"
	"fmt"
	"math"

	"quicksel/internal/geom"
)

// DefaultBandwidth is the kernel bandwidth over the normalized query
// feature space (concatenated box corners in [0,1]^2d).
const DefaultBandwidth = 0.15

// Config tunes the model.
type Config struct {
	Dim       int
	Bandwidth float64 // 0 means DefaultBandwidth
}

// Model is the query-similarity estimator.
type Model struct {
	cfg      Config
	unit     geom.Box
	features [][]float64 // one feature vector (lo‖hi) per observed query
	sels     []float64
}

// New returns an empty model.
func New(cfg Config) (*Model, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("querymodel: Dim must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Bandwidth < 0 {
		return nil, fmt.Errorf("querymodel: negative bandwidth %g", cfg.Bandwidth)
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = DefaultBandwidth
	}
	return &Model{cfg: cfg, unit: geom.Unit(cfg.Dim)}, nil
}

// NumObserved returns the number of recorded queries.
func (m *Model) NumObserved() int { return len(m.sels) }

// ParamCount counts the stored parameters: 2d box corners plus the
// selectivity per observed query (the quantity tracked in Figure 4).
func (m *Model) ParamCount() int { return len(m.sels) * (2*m.cfg.Dim + 1) }

// Observe records one (query box, selectivity) pair.
func (m *Model) Observe(box geom.Box, sel float64) error {
	if box.Dim() != m.cfg.Dim {
		return fmt.Errorf("querymodel: observed box has dim %d, want %d", box.Dim(), m.cfg.Dim)
	}
	if err := box.Validate(); err != nil {
		return fmt.Errorf("querymodel: observed box: %w", err)
	}
	if math.IsNaN(sel) {
		return errors.New("querymodel: NaN selectivity")
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	b := box.Clip(m.unit)
	m.features = append(m.features, featurize(b))
	m.sels = append(m.sels, sel)
	return nil
}

// Estimate returns the similarity-weighted average of observed
// selectivities; with no observations it falls back to the uniform
// assumption (box volume).
func (m *Model) Estimate(box geom.Box) (float64, error) {
	if box.Dim() != m.cfg.Dim {
		return 0, fmt.Errorf("querymodel: query box has dim %d, want %d", box.Dim(), m.cfg.Dim)
	}
	b := box.Clip(m.unit)
	if len(m.sels) == 0 {
		return b.Volume(), nil
	}
	f := featurize(b)
	inv := 1 / (2 * m.cfg.Bandwidth * m.cfg.Bandwidth)
	var num, den float64
	for i, fi := range m.features {
		k := math.Exp(-geom.SquaredDistance(f, fi) * inv)
		num += k * m.sels[i]
		den += k
	}
	if den < 1e-300 {
		// The query is far from every observed query; fall back to the
		// nearest observation rather than dividing by ~0.
		best, bestD := 0, math.Inf(1)
		for i, fi := range m.features {
			if d := geom.SquaredDistance(f, fi); d < bestD {
				best, bestD = i, d
			}
		}
		return m.sels[best], nil
	}
	est := num / den
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

// featurize maps a box to the concatenation of its corners.
func featurize(b geom.Box) []float64 {
	f := make([]float64, 0, 2*b.Dim())
	f = append(f, b.Lo...)
	f = append(f, b.Hi...)
	return f
}
