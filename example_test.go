package quicksel_test

import (
	"fmt"

	"quicksel"
)

// ExampleEstimator shows the core learn-then-estimate loop.
func ExampleEstimator() {
	schema, _ := quicksel.NewSchema(
		quicksel.Column{Name: "age", Kind: quicksel.Integer, Min: 0, Max: 100},
	)
	est, _ := quicksel.New(schema, quicksel.WithSeed(1))

	// The executor reports that "age < 50" selected 80% of rows.
	_ = est.Observe(quicksel.AtMost(0, 50), 0.8)

	sel, _ := est.Estimate(quicksel.AtLeast(0, 50))
	fmt.Printf("age >= 50 selects about %.0f%%\n", sel*100)
	// Output: age >= 50 selects about 20%
}

// ExampleParse shows text predicates.
func ExampleParse() {
	schema, _ := quicksel.NewSchema(
		quicksel.Column{Name: "age", Kind: quicksel.Integer, Min: 0, Max: 100},
		quicksel.Column{Name: "state", Kind: quicksel.Categorical, Min: 0, Max: 49},
	)
	p, err := quicksel.Parse(schema, "age BETWEEN 30 AND 39 AND state IN (3, 7)")
	if err != nil {
		fmt.Println("parse failed:", err)
		return
	}
	fmt.Println(p != nil)
	// Output: true
}

// ExampleWithMethod shows method selection: the same Estimator API served
// by one of the paper's baselines instead of QuickSel's mixture model.
// STHoles honors an observed predicate exactly, so re-asking it returns the
// observed selectivity.
func ExampleWithMethod() {
	schema, _ := quicksel.NewSchema(
		quicksel.Column{Name: "age", Kind: quicksel.Integer, Min: 0, Max: 100},
	)
	est, _ := quicksel.New(schema, quicksel.WithMethod(quicksel.MethodSTHoles))
	fmt.Println(est.Method())

	_ = est.ObserveWhere("age < 50", 0.8)
	sel, _ := est.EstimateWhere("age < 50")
	fmt.Printf("age < 50 selects %.0f%%\n", sel*100)
	// Output:
	// sthole
	// age < 50 selects 80%
}

// ExampleEstimator_ObserveWhere shows the text-feedback workflow a DBMS
// integration would use.
func ExampleEstimator_ObserveWhere() {
	schema, _ := quicksel.NewSchema(
		quicksel.Column{Name: "price", Kind: quicksel.Real, Min: 0, Max: 1000},
	)
	est, _ := quicksel.New(schema, quicksel.WithSeed(2))
	_ = est.ObserveWhere("price < 100", 0.65)
	sel, _ := est.EstimateWhere("price >= 100")
	fmt.Printf("price >= 100 selects about %.0f%%\n", sel*100)
	// Output: price >= 100 selects about 35%
}
