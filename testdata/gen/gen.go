// Command gen regenerates the snapshot-envelope compatibility fixtures:
// estimator envelopes at every supported format version (v1 through v5) and
// old-format registry files, each paired with probe WHERE clauses and the
// exact estimates the model produced when the fixture was written. The
// compat tests (snapshot_compat_test.go, internal/server/compat_test.go)
// restore the fixtures with current code and require bit-identical
// estimates, so these files must never be regenerated casually — they exist
// to freeze the old formats. Regenerating must leave the already-committed
// old-version fixtures byte-identical; the version-aware downgrade below
// strips every field the old format did not carry.
//
// Run from the repository root: go run ./testdata/gen
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"quicksel"
)

// probe is one WHERE clause with the estimate frozen at generation time.
type probe struct {
	Where string  `json:"where"`
	Want  float64 `json:"want"`
}

// snapshotFixture is the shape of testdata/snapshot_v*.json.
type snapshotFixture struct {
	Comment  string             `json:"comment"`
	Snapshot *quicksel.Snapshot `json:"snapshot"`
	Probes   []probe            `json:"probes"`
}

// registryFixture is the shape of internal/server/testdata/registry_v*.json.
// File is the raw registry snapshot file; the test writes it to disk and
// boots a registry from it.
type registryFixture struct {
	Comment string             `json:"comment"`
	File    json.RawMessage    `json:"file"`
	Probes  map[string][]probe `json:"probes"`
}

var probeWheres = []string{
	"age >= 50",
	"age BETWEEN 25 AND 44",
	"salary < 40000 OR salary >= 150000",
	"age < 30 AND salary >= 100000",
}

func buildEstimator(method string, seed int64) (*quicksel.Estimator, error) {
	schema, err := quicksel.NewSchema(
		quicksel.Column{Name: "age", Kind: quicksel.Integer, Min: 18, Max: 90},
		quicksel.Column{Name: "salary", Kind: quicksel.Real, Min: 0, Max: 300_000},
	)
	if err != nil {
		return nil, err
	}
	opts := []quicksel.Option{quicksel.WithSeed(seed)}
	if method != "" {
		opts = append(opts, quicksel.WithMethod(method))
	}
	est, err := quicksel.New(schema, opts...)
	if err != nil {
		return nil, err
	}
	obs := []struct {
		where string
		sel   float64
	}{
		{"age BETWEEN 18 AND 29", 0.22},
		{"age BETWEEN 30 AND 49", 0.41},
		{"salary >= 100000", 0.18},
		{"age BETWEEN 30 AND 49 AND salary >= 100000", 0.12},
		{"salary < 40000", 0.35},
	}
	for _, o := range obs {
		if err := est.ObserveWhere(o.where, o.sel); err != nil {
			return nil, err
		}
	}
	if err := est.Train(); err != nil {
		return nil, err
	}
	return est, nil
}

// buildWarmEstimator builds the v5 fixture model: warm-started, with an
// observation coreset small enough that the near-duplicate observations
// below merge (Jaccard 1) into weighted records.
func buildWarmEstimator(seed int64) (*quicksel.Estimator, error) {
	schema, err := quicksel.NewSchema(
		quicksel.Column{Name: "age", Kind: quicksel.Integer, Min: 18, Max: 90},
		quicksel.Column{Name: "salary", Kind: quicksel.Real, Min: 0, Max: 300_000},
	)
	if err != nil {
		return nil, err
	}
	est, err := quicksel.New(schema,
		quicksel.WithSeed(seed),
		quicksel.WithWarmStart(),
		quicksel.WithFixedSubpopulations(24),
		quicksel.WithMaxObservations(6),
	)
	if err != nil {
		return nil, err
	}
	obs := []struct {
		where string
		sel   float64
	}{
		{"age BETWEEN 18 AND 29", 0.22},
		{"age BETWEEN 30 AND 49", 0.41},
		{"salary >= 100000", 0.18},
		{"age BETWEEN 18 AND 29", 0.24}, // merges with the first record
		{"age BETWEEN 30 AND 49 AND salary >= 100000", 0.12},
		{"salary < 40000", 0.35},
		{"salary >= 100000", 0.20}, // merges with the third record
	}
	for _, o := range obs {
		if err := est.ObserveWhere(o.where, o.sel); err != nil {
			return nil, err
		}
	}
	if err := est.Train(); err != nil {
		return nil, err
	}
	return est, nil
}

// hasMergedWeight reports whether the model carries at least one observation
// with a merged (non-unit) coreset weight.
func hasMergedWeight(s *quicksel.Snapshot) bool {
	if s.Model == nil {
		return false
	}
	for _, o := range s.Model.Observations {
		if o.Weight > 1 {
			return true
		}
	}
	return false
}

func probesFor(est *quicksel.Estimator) ([]probe, error) {
	out := make([]probe, len(probeWheres))
	for i, w := range probeWheres {
		sel, err := est.EstimateWhere(w)
		if err != nil {
			return nil, err
		}
		out[i] = probe{Where: w, Want: sel}
	}
	return out, nil
}

// downgrade rewrites a current envelope into the given old format version,
// stripping every field that version's writers could not produce: v5 added
// the model's observation-coreset fields (per-observation weights and the
// warm-start/coreset config), v4 added the envelope WalSeq and the model's
// rng_draws fast-forward, v3 added the lifecycle section, v2 added
// method+state (v1 was QuickSel-only).
func downgrade(s *quicksel.Snapshot, version int) *quicksel.Snapshot {
	s.Version = version
	if version < 5 && s.Model != nil {
		s.Model.Config.WarmStart = false
		s.Model.Config.MaxObservations = 0
		s.Model.Config.MergeThreshold = 0
		for i := range s.Model.Observations {
			s.Model.Observations[i].Weight = 0
		}
	}
	if version < 4 {
		s.WalSeq = 0
		if s.Model != nil {
			s.Model.RngDraws = 0
		}
	}
	if version < 3 {
		s.Lifecycle = nil
	}
	if version == 1 {
		s.Method = ""
		s.State = nil
	}
	return s
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func main() {
	// Root fixtures: one v1 envelope (quicksel method, pre-method format)
	// and one v2 envelope (sthole method, pre-lifecycle format).
	qs, err := buildEstimator("", 7)
	if err != nil {
		log.Fatal(err)
	}
	qsProbes, err := probesFor(qs)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeJSON("testdata/snapshot_v1.json", snapshotFixture{
		Comment:  "version-1 estimator envelope (pre-method format, QuickSel only); estimates frozen at generation time",
		Snapshot: downgrade(qs.Snapshot(), 1),
		Probes:   qsProbes,
	}); err != nil {
		log.Fatal(err)
	}

	sth, err := buildEstimator(quicksel.MethodSTHoles, 7)
	if err != nil {
		log.Fatal(err)
	}
	sthProbes, err := probesFor(sth)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeJSON("testdata/snapshot_v2.json", snapshotFixture{
		Comment:  "version-2 estimator envelope (method-aware, pre-lifecycle format) carrying the sthole method",
		Snapshot: downgrade(sth.Snapshot(), 2),
		Probes:   sthProbes,
	}); err != nil {
		log.Fatal(err)
	}

	// v3: lifecycle-aware envelope (maxent method, so the matrix also covers
	// a State-payload method with a lifecycle section).
	me, err := buildEstimator(quicksel.MethodMaxEnt, 7)
	if err != nil {
		log.Fatal(err)
	}
	meProbes, err := probesFor(me)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeJSON("testdata/snapshot_v3.json", snapshotFixture{
		Comment:  "version-3 estimator envelope (lifecycle-aware, pre-WAL format) carrying the maxent method",
		Snapshot: downgrade(me.Snapshot(), 3),
		Probes:   meProbes,
	}); err != nil {
		log.Fatal(err)
	}

	// v4: WAL-aware envelope (quicksel method with the rng_draws
	// fast-forward, no coreset fields).
	qs4, err := buildEstimator("", 11)
	if err != nil {
		log.Fatal(err)
	}
	qs4Probes, err := probesFor(qs4)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeJSON("testdata/snapshot_v4.json", snapshotFixture{
		Comment:  "version-4 estimator envelope (WAL-aware, pre-coreset format) carrying the quicksel method",
		Snapshot: downgrade(qs4.Snapshot(), 4),
		Probes:   qs4Probes,
	}); err != nil {
		log.Fatal(err)
	}

	// v5: the current format — a warm-started QuickSel model with an
	// observation coreset, so the fixture freezes merged observation weights
	// and the warm/coreset config fields.
	warm, err := buildWarmEstimator(13)
	if err != nil {
		log.Fatal(err)
	}
	warmProbes, err := probesFor(warm)
	if err != nil {
		log.Fatal(err)
	}
	warmSnap := warm.Snapshot()
	if !hasMergedWeight(warmSnap) {
		log.Fatal("v5 fixture has no merged observation weight; adjust the observation set")
	}
	if err := writeJSON("testdata/snapshot_v5.json", snapshotFixture{
		Comment:  "version-5 estimator envelope (coreset-aware) carrying a warm-started quicksel model with merged observation weights",
		Snapshot: warmSnap,
		Probes:   warmProbes,
	}); err != nil {
		log.Fatal(err)
	}

	// Registry fixtures: a v1 file (quicksel-only, envelopes downgraded to
	// v1) and a v2 file (one quicksel + one sthole estimator, envelopes at
	// v2).
	type registryFile struct {
		Version    int                           `json:"version"`
		Estimators map[string]*quicksel.Snapshot `json:"estimators"`
	}
	v1file, err := json.Marshal(registryFile{
		Version:    1,
		Estimators: map[string]*quicksel.Snapshot{"people": downgrade(qs.Snapshot(), 1)},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := writeJSON("internal/server/testdata/registry_v1.json", registryFixture{
		Comment: "version-1 registry snapshot file (quicksel-only envelopes)",
		File:    v1file,
		Probes:  map[string][]probe{"people": qsProbes},
	}); err != nil {
		log.Fatal(err)
	}

	v2file, err := json.Marshal(registryFile{
		Version: 2,
		Estimators: map[string]*quicksel.Snapshot{
			"people":   downgrade(qs.Snapshot(), 2),
			"people_h": downgrade(sth.Snapshot(), 2),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := writeJSON("internal/server/testdata/registry_v2.json", registryFixture{
		Comment: "version-2 registry snapshot file (method-aware envelopes, no lifecycle section)",
		File:    v2file,
		Probes:  map[string][]probe{"people": qsProbes, "people_h": sthProbes},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fixtures regenerated")
}
