package quicksel_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"quicksel"
)

func testSchema(t *testing.T) *quicksel.Schema {
	t.Helper()
	schema, err := quicksel.NewSchema(
		quicksel.Column{Name: "age", Kind: quicksel.Integer, Min: 18, Max: 90},
		quicksel.Column{Name: "salary", Kind: quicksel.Real, Min: 0, Max: 300_000},
		quicksel.Column{Name: "state", Kind: quicksel.Categorical, Min: 0, Max: 49},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func trainedEstimator(t *testing.T) *quicksel.Estimator {
	t.Helper()
	est, err := quicksel.New(testSchema(t), quicksel.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	obs := []struct {
		where string
		sel   float64
	}{
		{"age BETWEEN 18 AND 29", 0.22},
		{"age BETWEEN 30 AND 49 AND salary >= 100000", 0.12},
		{"salary < 40000", 0.35},
		{"state IN (3, 7) OR salary >= 150000", 0.14},
		{"NOT (age >= 65)", 0.81},
	}
	for _, o := range obs {
		if err := est.ObserveWhere(o.where, o.sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := est.Train(); err != nil {
		t.Fatal(err)
	}
	return est
}

var snapshotProbes = []string{
	"age >= 50",
	"age BETWEEN 25 AND 44",
	"salary < 40000 OR salary >= 150000",
	"state = 7",
	"age < 30 AND salary >= 100000 AND state IN (1, 2, 3)",
}

// TestSnapshotRoundTrip checks that a snapshot restored through the JSON
// encoding produces bit-identical estimates without retraining.
func TestSnapshotRoundTrip(t *testing.T) {
	est := trainedEstimator(t)

	var buf bytes.Buffer
	if err := est.EncodeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := quicksel.DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := restored.NumObserved(), est.NumObserved(); got != want {
		t.Fatalf("restored NumObserved = %d, want %d", got, want)
	}
	if got, want := restored.ParamCount(), est.ParamCount(); got != want {
		t.Fatalf("restored ParamCount = %d, want %d", got, want)
	}
	for _, where := range snapshotProbes {
		want, err := est.EstimateWhere(where)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.EstimateWhere(where)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("EstimateWhere(%q) = %v after restore, want %v", where, got, want)
		}
	}
}

// TestSnapshotRestoreThenLearn checks a restored estimator keeps learning:
// new observations and retraining work on the restored state.
func TestSnapshotRestoreThenLearn(t *testing.T) {
	est := trainedEstimator(t)
	restored, err := quicksel.Restore(est.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ObserveWhere("age >= 70", 0.08); err != nil {
		t.Fatal(err)
	}
	if err := restored.Train(); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.NumObserved(), est.NumObserved()+1; got != want {
		t.Fatalf("NumObserved = %d, want %d", got, want)
	}
	sel, err := restored.EstimateWhere("age >= 70")
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0 || sel > 1 {
		t.Fatalf("estimate %v out of [0, 1]", sel)
	}
}

// TestSnapshotRejectsCorrupt checks Restore validates its input.
func TestSnapshotRejectsCorrupt(t *testing.T) {
	est := trainedEstimator(t)

	if _, err := quicksel.Restore(nil); err == nil {
		t.Error("Restore(nil) succeeded")
	}

	s := est.Snapshot()
	s.Version = 99
	if _, err := quicksel.Restore(s); err == nil {
		t.Error("Restore accepted bad version")
	}

	s = est.Snapshot()
	s.Schema = nil
	if _, err := quicksel.Restore(s); err == nil {
		t.Error("Restore accepted nil schema")
	}

	s = est.Snapshot()
	s.Model.Weights = s.Model.Weights[:1]
	if _, err := quicksel.Restore(s); err == nil {
		t.Error("Restore accepted mismatched weights")
	}

	s = est.Snapshot()
	s.Model.Observations[0].Lo = []float64{0.5}
	if _, err := quicksel.Restore(s); err == nil {
		t.Error("Restore accepted wrong-dimension observation")
	}
}

// TestEstimatorConcurrentHammer drives one Estimator from many goroutines
// mixing Observe, Estimate, Train, and Snapshot. Run under -race; the test
// asserts only sanity (no errors, estimates in range) — the point is the
// interleaving.
func TestEstimatorConcurrentHammer(t *testing.T) {
	est, err := quicksel.New(testSchema(t), quicksel.WithSeed(1), quicksel.WithMaxSubpopulations(64))
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		iterations = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iterations)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				switch (g + i) % 4 {
				case 0:
					lo := 18 + (7*g+i)%40
					where := fmt.Sprintf("age BETWEEN %d AND %d", lo, lo+10)
					if err := est.ObserveWhere(where, float64(i%10)/10); err != nil {
						errs <- err
						return
					}
				case 1:
					sel, err := est.EstimateWhere("salary >= 100000")
					if err != nil {
						errs <- err
						return
					}
					if sel < 0 || sel > 1 {
						errs <- fmt.Errorf("estimate %v out of range", sel)
						return
					}
				case 2:
					if err := est.Train(); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := quicksel.Restore(est.Snapshot()); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
